package pubsub

import (
	"testing"
	"time"
)

// waitSubs polls until the publisher sees n subscribers or times out.
func waitSubs(t *testing.T, p *Publisher, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.NumSubscribers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("publisher never saw %d subscribers", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// recvOne receives one message or fails after a timeout.
func recvOne(t *testing.T, s *Subscriber) Message {
	t.Helper()
	select {
	case m, ok := <-s.C():
		if !ok {
			t.Fatal("subscriber channel closed unexpectedly")
		}
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for message")
	}
	panic("unreachable")
}

// publishUntilReceived repeatedly publishes m until sub receives a
// matching message. The TCP subscribe frame races with the first publish,
// so tests retry rather than sleep.
func publishUntilReceived(t *testing.T, p *Publisher, s *Subscriber, m Message) Message {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		p.Publish(m)
		select {
		case got, ok := <-s.C():
			if !ok {
				t.Fatal("subscriber channel closed")
			}
			return got
		case <-time.After(10 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("message never arrived")
		}
	}
}

func TestTCPPubSubDelivery(t *testing.T) {
	p, err := NewPublisher("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	s, err := Dial(p.Addr(), "progress.")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	waitSubs(t, p, 1)

	got := publishUntilReceived(t, p, s, Message{Topic: "progress.amg", Payload: []byte("3.0")})
	if got.Topic != "progress.amg" || string(got.Payload) != "3.0" {
		t.Fatalf("got %+v", got)
	}
}

func TestTCPPrefixFiltering(t *testing.T) {
	p, err := NewPublisher("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	s, err := Dial(p.Addr(), "power.")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	waitSubs(t, p, 1)

	// Establish that the subscription is active using a matching topic.
	publishUntilReceived(t, p, s, Message{Topic: "power.cap"})

	// Now a non-matching topic followed by a matching marker: only the
	// marker should arrive.
	p.Publish(Message{Topic: "progress.lammps"})
	p.Publish(Message{Topic: "power.marker"})
	if got := recvOne(t, s); got.Topic != "power.marker" {
		t.Fatalf("received non-matching topic first: %q", got.Topic)
	}
}

func TestTCPMultipleSubscribers(t *testing.T) {
	p, err := NewPublisher("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	s1, err := Dial(p.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := Dial(p.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	waitSubs(t, p, 2)

	// Both subscriptions race with the first publishes, so drive each
	// independently until its copy arrives.
	if got := publishUntilReceived(t, p, s1, Message{Topic: "x", Payload: []byte("v")}); got.Topic != "x" {
		t.Fatalf("s1 got %+v", got)
	}
	if got := publishUntilReceived(t, p, s2, Message{Topic: "x", Payload: []byte("v")}); got.Topic != "x" {
		t.Fatalf("s2 got %+v", got)
	}
}

func TestTCPSubscriberCloseStopsDelivery(t *testing.T) {
	p, err := NewPublisher("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	s, err := Dial(p.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	waitSubs(t, p, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Publisher drops the connection on its next write attempt.
	deadline := time.Now().Add(5 * time.Second)
	for p.NumSubscribers() > 0 {
		p.Publish(Message{Topic: "t"})
		if time.Now().After(deadline) {
			t.Fatal("publisher never noticed subscriber disconnect")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTCPPublisherCloseClosesSubscribers(t *testing.T) {
	p, err := NewPublisher("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Dial(p.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	waitSubs(t, p, 1)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, open := <-s.C():
		if open {
			// Drain any in-flight message; channel must close eventually.
			for range s.C() {
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber channel did not close after publisher shutdown")
	}
	if p.Close() != nil { // idempotent
		t.Fatal("second Close errored")
	}
}

func TestTCPDialBadAddr(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("Dial to closed port succeeded")
	}
}

func TestTCPLateSubscribe(t *testing.T) {
	p, err := NewPublisher("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	s, err := Dial(p.Addr(), "a.")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	waitSubs(t, p, 1)
	publishUntilReceived(t, p, s, Message{Topic: "a.1"})

	if err := s.Subscribe("b."); err != nil {
		t.Fatal(err)
	}
	publishUntilReceived(t, p, s, Message{Topic: "b.1"})
}

func TestPublisherStats(t *testing.T) {
	p, err := NewPublisher("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	s, err := Dial(p.Addr(), "progress.")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	waitSubs(t, p, 1)
	publishUntilReceived(t, p, s, Message{Topic: "progress.n1", Payload: []byte("1")})

	// Wait for the subscribe frame to be processed so prefixes show up.
	deadline := time.Now().Add(5 * time.Second)
	var st PublisherStats
	for {
		st = p.Stats()
		if len(st.Subscribers) == 1 && len(st.Subscribers[0].Prefixes) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never showed registered prefixes: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if st.Accepted != 1 || st.Live != 1 || st.ConnsLost != 0 {
		t.Errorf("stats = %+v, want accepted 1, live 1, lost 0", st)
	}
	if st.Subscribers[0].Prefixes[0] != "progress." {
		t.Errorf("prefixes = %v", st.Subscribers[0].Prefixes)
	}

	// Kick and reconnect-free check: the drop is accounted even though the
	// connection is gone.
	p.KickAll()
	deadline = time.Now().Add(5 * time.Second)
	for p.NumSubscribers() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("kicked subscriber never removed")
		}
		time.Sleep(time.Millisecond)
	}
	st = p.Stats()
	if st.ConnsLost != 1 || st.Live != 0 {
		t.Errorf("after kick stats = %+v, want lost 1 live 0", st)
	}
}

func TestPublisherStatsCountsShedsAcrossConnDeath(t *testing.T) {
	p, err := NewPublisher("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	s, err := Dial(p.Addr(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	waitSubs(t, p, 1)
	publishUntilReceived(t, p, s, Message{Topic: "x", Payload: []byte("1")})

	// Simulate a slow subscriber: overflow its 1024-slot queue while the
	// write loop is blocked behind an unread TCP buffer. Rather than fight
	// real TCP buffering, inject drops directly through the conn snapshot.
	p.mu.Lock()
	var pc *pubConn
	for c := range p.conns {
		pc = c
	}
	p.mu.Unlock()
	pc.mu.Lock()
	pc.dropped = 7
	pc.mu.Unlock()

	if got := p.Stats().Dropped; got != 7 {
		t.Fatalf("live drops = %d, want 7", got)
	}
	p.KickAll()
	deadline := time.Now().Add(5 * time.Second)
	for p.NumSubscribers() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("kicked subscriber never removed")
		}
		time.Sleep(time.Millisecond)
	}
	if got := p.Stats().Dropped; got != 7 {
		t.Fatalf("drops after conn death = %d, want 7 (inherited)", got)
	}
}
