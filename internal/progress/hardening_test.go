package progress

import (
	"math"
	"testing"
	"time"
)

func TestOfferRejectsNonFinite(t *testing.T) {
	m := NewMonitor(time.Second)
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1} {
		if m.Offer(Report{Value: v}) {
			t.Errorf("Offer accepted %v", v)
		}
	}
	if m.Rejected() != 4 {
		t.Fatalf("rejected = %d, want 4", m.Rejected())
	}
	if m.Reports() != 0 || m.TotalUnits() != 0 {
		t.Fatal("rejected reports leaked into aggregates")
	}
	s := m.Flush(time.Second)
	if s.Rate != 0 || s.Reports != 0 {
		t.Fatalf("rejected reports leaked into sample: %+v", s)
	}
}

func TestOfferRejectsOutlierSpike(t *testing.T) {
	m := NewMonitor(time.Second)
	for i := 0; i < 16; i++ {
		if !m.Offer(Report{Value: 100}) {
			t.Fatal("steady report rejected")
		}
	}
	// A glitched counter published as progress: 2^10 × the recent level.
	if m.Offer(Report{Value: 100 * 1024}) {
		t.Fatal("Offer accepted a 1024x spike")
	}
	if m.Rejected() != 1 {
		t.Fatalf("rejected = %d, want 1", m.Rejected())
	}
	// A genuine phase change (a few x) still passes.
	if !m.Offer(Report{Value: 400}) {
		t.Fatal("Offer rejected a plausible phase-change value")
	}
}

func TestOfferColdStartAcceptsAnything(t *testing.T) {
	m := NewMonitor(time.Second)
	// Too little history for the outlier guard: a legitimate first burst
	// must pass even if large.
	if !m.Offer(Report{Value: 1e12}) {
		t.Fatal("cold monitor rejected a large first value")
	}
}

func TestEmptyWindowsTracksConsecutiveSilence(t *testing.T) {
	m := NewMonitor(time.Second)
	m.Offer(Report{Value: 1})
	m.Flush(1 * time.Second)
	if m.EmptyWindows() != 0 {
		t.Fatalf("EmptyWindows after reporting window = %d", m.EmptyWindows())
	}
	m.Flush(2 * time.Second)
	m.Flush(3 * time.Second)
	m.Flush(4 * time.Second)
	if m.EmptyWindows() != 3 {
		t.Fatalf("EmptyWindows after 3 silent windows = %d, want 3", m.EmptyWindows())
	}
	m.Offer(Report{Value: 1})
	m.Flush(5 * time.Second)
	if m.EmptyWindows() != 0 {
		t.Fatalf("EmptyWindows after signal resumed = %d, want 0", m.EmptyWindows())
	}
}
