package progress

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"progresscap/internal/pubsub"
)

func TestReportMarshalRoundTrip(t *testing.T) {
	in := Report{App: "lammps", Phase: "verlet", Value: 40000, At: 1500 * time.Millisecond}
	out, err := UnmarshalReport(in.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestReportRoundTripProperty(t *testing.T) {
	prop := func(value float64, at uint32, appRaw, phaseRaw uint8) bool {
		if math.IsNaN(value) {
			return true
		}
		app := string(make([]byte, appRaw%20))
		phase := string(make([]byte, phaseRaw%20))
		in := Report{App: app, Phase: phase, Value: value, At: time.Duration(at)}
		out, err := UnmarshalReport(in.Marshal())
		return err == nil && out == in
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		make([]byte, 17),
		append(make([]byte, 16), 200), // app length exceeds payload
	}
	for i, b := range cases {
		if _, err := UnmarshalReport(b); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestMarshalLongNamePanics(t *testing.T) {
	long := make([]byte, 300)
	defer func() {
		if recover() == nil {
			t.Fatal("300-byte app name did not panic")
		}
	}()
	Report{App: string(long)}.Marshal()
}

// busAdapter adapts pubsub.Bus to the Publisher interface.
type busAdapter struct{ bus *pubsub.Bus }

func (a busAdapter) PublishPayload(topic string, payload []byte) int {
	return a.bus.Publish(pubsub.Message{Topic: topic, Payload: payload})
}

func TestReporterPublishesOnAppTopic(t *testing.T) {
	bus := pubsub.NewBus()
	sub := bus.Subscribe(Topic("amg"), 16)
	other := bus.Subscribe(Topic("lammps"), 16)

	r := NewReporter("amg", busAdapter{bus})
	r.Publish("solve", 1, time.Second)
	if r.Sent() != 1 {
		t.Fatalf("Sent = %d", r.Sent())
	}
	m, ok := sub.TryRecv()
	if !ok {
		t.Fatal("subscriber missed report")
	}
	rep, err := UnmarshalReport(m.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if rep.App != "amg" || rep.Phase != "solve" || rep.Value != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if _, ok := other.TryRecv(); ok {
		t.Fatal("cross-app leakage")
	}
}

func TestMonitorAggregatesWindow(t *testing.T) {
	m := NewMonitor(time.Second)
	// LAMMPS-style: 20 reports of 40000 units inside one second.
	for i := 0; i < 20; i++ {
		m.Offer(Report{Value: 40000, Phase: "verlet"})
	}
	s := m.Flush(time.Second)
	if s.Rate != 800000 {
		t.Fatalf("rate = %v, want 800000", s.Rate)
	}
	if s.Reports != 20 || s.Phase != "verlet" {
		t.Fatalf("sample = %+v", s)
	}
}

func TestMonitorEmptyWindowIsZero(t *testing.T) {
	m := NewMonitor(time.Second)
	m.Offer(Report{Value: 5})
	m.Flush(time.Second)
	s := m.Flush(2 * time.Second) // nothing offered: the OpenMC artifact
	if s.Rate != 0 || s.Reports != 0 {
		t.Fatalf("empty window sample = %+v", s)
	}
	if len(m.Samples()) != 2 {
		t.Fatalf("samples = %d", len(m.Samples()))
	}
}

func TestMonitorSubSecondWindow(t *testing.T) {
	m := NewMonitor(500 * time.Millisecond)
	m.Offer(Report{Value: 3})
	s := m.Flush(500 * time.Millisecond)
	if s.Rate != 6 { // 3 units / 0.5 s
		t.Fatalf("rate = %v, want 6", s.Rate)
	}
}

func TestMonitorTotalsAndMeanRate(t *testing.T) {
	m := NewMonitor(time.Second)
	for w := 1; w <= 4; w++ {
		m.Offer(Report{Value: float64(w)})
		m.Flush(time.Duration(w) * time.Second)
	}
	if m.TotalUnits() != 10 || m.Reports() != 4 {
		t.Fatalf("totals = %v units, %d reports", m.TotalUnits(), m.Reports())
	}
	if m.MeanRate() != 2.5 {
		t.Fatalf("MeanRate = %v", m.MeanRate())
	}
	if got := m.Rates(); len(got) != 4 || got[2] != 3 {
		t.Fatalf("Rates = %v", got)
	}
}

func TestMonitorBadWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window did not panic")
		}
	}()
	NewMonitor(0)
}

func TestCategoryString(t *testing.T) {
	if Category1.String() != "1" || Category3.String() != "3" {
		t.Fatal("category strings wrong")
	}
}

func TestClassifySteady(t *testing.T) {
	vals := make([]float64, 30)
	for i := range vals {
		vals[i] = 1080 + float64(i%3) // tiny wobble
	}
	if got := Classify(vals); got != Steady {
		t.Fatalf("steady series classified %v", got)
	}
}

func TestClassifyFluctuating(t *testing.T) {
	// AMG-style: alternating 2.5 and 3.0 iterations/s (CV ≈ 0.09).
	var vals []float64
	for i := 0; i < 30; i++ {
		if i%2 == 0 {
			vals = append(vals, 2.5)
		} else {
			vals = append(vals, 3.0)
		}
	}
	if got := Classify(vals); got != Fluctuating {
		t.Fatalf("fluctuating series classified %v", got)
	}
}

func TestClassifyPhased(t *testing.T) {
	// QMCPACK-style: three sustained levels.
	var vals []float64
	for i := 0; i < 10; i++ {
		vals = append(vals, 8)
	}
	for i := 0; i < 10; i++ {
		vals = append(vals, 12)
	}
	for i := 0; i < 10; i++ {
		vals = append(vals, 16)
	}
	if got := Classify(vals); got != Phased {
		t.Fatalf("phased series classified %v", got)
	}
}

func TestClassifyIgnoresZeroArtifacts(t *testing.T) {
	// OpenMC-style: steady 100k particles/s with occasional zeros.
	var vals []float64
	for i := 0; i < 30; i++ {
		if i%7 == 3 {
			vals = append(vals, 0)
		} else {
			vals = append(vals, 100000)
		}
	}
	if got := Classify(vals); got != Steady {
		t.Fatalf("zero-artifact series classified %v", got)
	}
}

func TestClassifyShortSeries(t *testing.T) {
	if got := Classify([]float64{5, 9}); got != Steady {
		t.Fatalf("short series classified %v", got)
	}
	if got := Classify(nil); got != Steady {
		t.Fatalf("nil series classified %v", got)
	}
}

func TestBehaviorString(t *testing.T) {
	if Steady.String() != "steady" || Fluctuating.String() != "fluctuating" || Phased.String() != "phased" {
		t.Fatal("behavior strings wrong")
	}
	if Behavior(9).String() != "unknown" {
		t.Fatal("unknown behavior string wrong")
	}
}

func TestMonitorNextFlushAt(t *testing.T) {
	m := NewMonitor(time.Second)
	if got := m.NextFlushAt(); got != time.Second {
		t.Fatalf("fresh monitor NextFlushAt = %v, want 1s", got)
	}
	m.Flush(time.Second)
	if got := m.NextFlushAt(); got != 2*time.Second {
		t.Fatalf("after flush at 1s, NextFlushAt = %v, want 2s", got)
	}
	// A late (off-grid) flush restarts the window from where it happened.
	m.Flush(2500 * time.Millisecond)
	if got := m.NextFlushAt(); got != 3500*time.Millisecond {
		t.Fatalf("after flush at 2.5s, NextFlushAt = %v, want 3.5s", got)
	}
}
