package progress

import (
	"math"
	"testing"
	"time"
)

// FuzzUnmarshalReport hardens the progress-report decoder: arbitrary
// payloads must never panic, and accepted reports must round-trip.
func FuzzUnmarshalReport(f *testing.F) {
	f.Add(Report{App: "lammps", Phase: "verlet", Value: 40000, At: time.Second}.Marshal())
	f.Add([]byte{})
	f.Add(make([]byte, 17))
	f.Add(append(make([]byte, 16), 255))
	// Regression seeds: truncated mid-name payloads — a report cut at the
	// app-length byte, one cut inside the app name, and one missing only
	// the phase-length byte. Each once produced a confusing decode path.
	f.Add(Report{App: "openmc", Phase: "batch", Value: 1, At: time.Second}.Marshal()[:18])
	f.Add(Report{App: "openmc", Phase: "batch", Value: 1, At: time.Second}.Marshal()[:20])
	f.Add(Report{App: "openmc", Phase: "batch", Value: 1, At: time.Second}.Marshal()[:23])
	// Regression seeds: NaN and ±Inf values decode structurally fine and
	// must be caught downstream by Monitor.Offer, not by the decoder.
	f.Add(Report{App: "x", Value: math.NaN(), At: time.Second}.Marshal())
	f.Add(Report{App: "x", Value: math.Inf(1), At: time.Second}.Marshal())
	f.Add(Report{App: "x", Value: math.Inf(-1), At: time.Second}.Marshal())
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalReport(data)
		if err != nil {
			return
		}
		if len(r.App) > 255 || len(r.Phase) > 255 {
			return // Marshal would reject; decoder was lenient
		}
		r2, err := UnmarshalReport(r.Marshal())
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		// NaN values compare unequal to themselves; compare bit-level
		// via re-marshal instead.
		if string(r2.Marshal()) != string(r.Marshal()) {
			t.Fatal("round trip changed the report")
		}
	})
}
