// Checkpoint accessors for the progress pipeline. A checkpoint happens
// at a window boundary, immediately after the engine drained every
// subscription and flushed every monitor — so a monitor's pending slice
// is empty by construction (Pending exposes the check) and only the
// aggregated state needs to travel. The Decoder's interning map is a
// pure cache and starts fresh on the restored side.

package progress

import "time"

// MonitorState is the mutable state of a Monitor (the window is
// construction-time configuration).
type MonitorState struct {
	Samples      []Sample
	Total        float64
	Reports      uint64
	LastFlush    time.Duration
	Rejected     uint64
	History      []float64
	HistPos      int
	EmptyWindows int
}

// Pending returns how many raw reports await the next Flush. The engine
// requires zero before checkpointing.
func (m *Monitor) Pending() int { return len(m.pending) }

// Snapshot captures the monitor's aggregated state. It panics if raw
// reports are pending: a mid-window checkpoint is an engine bug.
func (m *Monitor) Snapshot() MonitorState {
	if len(m.pending) != 0 {
		panic("progress: monitor snapshot with pending reports")
	}
	return MonitorState{
		Samples:      append([]Sample(nil), m.samples...),
		Total:        m.total,
		Reports:      m.reports,
		LastFlush:    m.lastFlush,
		Rejected:     m.rejected,
		History:      append([]float64(nil), m.history...),
		HistPos:      m.histPos,
		EmptyWindows: m.emptyWindows,
	}
}

// Restore pours a captured state back.
func (m *Monitor) Restore(s MonitorState) {
	m.pending = m.pending[:0]
	m.samples = append([]Sample(nil), s.Samples...)
	m.total = s.Total
	m.reports = s.Reports
	m.lastFlush = s.LastFlush
	m.rejected = s.Rejected
	m.history = append([]float64(nil), s.History...)
	m.histPos = s.HistPos
	m.emptyWindows = s.EmptyWindows
}

// ReporterState is the mutable state of a Reporter.
type ReporterState struct {
	Sent uint64
}

// Snapshot captures the reporter's publish count.
func (r *Reporter) Snapshot() ReporterState { return ReporterState{Sent: r.sent} }

// Restore pours a captured publish count back.
func (r *Reporter) Restore(s ReporterState) { r.sent = s.Sent }

// PhaseDetectorState is the mutable state of a PhaseDetector (relTol and
// minLen are construction-time configuration).
type PhaseDetectorState struct {
	N       int
	Level   float64
	LevelN  int
	Pending []float64
	Changes []PhaseChange
}

// Snapshot captures the detector's state.
func (d *PhaseDetector) Snapshot() PhaseDetectorState {
	return PhaseDetectorState{
		N:       d.n,
		Level:   d.level,
		LevelN:  d.levelN,
		Pending: append([]float64(nil), d.pending...),
		Changes: append([]PhaseChange(nil), d.changes...),
	}
}

// Restore pours a captured state back.
func (d *PhaseDetector) Restore(s PhaseDetectorState) {
	d.n = s.N
	d.level = s.Level
	d.levelN = s.LevelN
	d.pending = append(d.pending[:0:0], s.Pending...)
	d.changes = append([]PhaseChange(nil), s.Changes...)
}
