// Package progress implements the paper's central abstraction: an
// application-specific *online performance* metric published at runtime
// (§III). It provides the report wire format, the source-side Reporter
// the instrumented applications use, the Monitor that aggregates raw
// reports into per-second online-performance values (§IV-B), and the
// category taxonomy from Table V.
package progress

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"
)

// Category classifies applications by how well online performance can be
// defined for them (§III-B).
type Category int

const (
	// Category1: a clear online-performance metric exists and correlates
	// with the scientific goal (QMCPACK, OpenMC, LAMMPS, STREAM).
	Category1 Category = 1
	// Category2: online performance is well defined but does not reveal
	// how far the application is from its goal (AMG, CANDLE training).
	Category2 Category = 2
	// Category3: no single reliable metric exists (URBAN, Nek5000, HACC).
	Category3 Category = 3
)

func (c Category) String() string {
	switch c {
	case Category1:
		return "1"
	case Category2:
		return "2"
	case Category3:
		return "3"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Topic returns the pub/sub topic progress reports for app are published
// on.
func Topic(app string) string { return "progress." + app }

// Report is one raw progress publication: the application completed
// Value metric units (e.g. one block, 40000 atom-timesteps) at virtual
// time At, while in the named phase.
type Report struct {
	App   string
	Phase string
	Value float64
	At    time.Duration
}

// MarshaledSize returns the encoded length of the report.
func (r Report) MarshaledSize() int { return 18 + len(r.App) + len(r.Phase) }

// Marshal encodes the report into a compact binary payload.
func (r Report) Marshal() []byte {
	return r.AppendMarshal(make([]byte, 0, r.MarshaledSize()))
}

// AppendMarshal appends the encoded report to buf and returns the
// extended slice, allocating only if buf lacks capacity. It is the
// allocation-free form of Marshal for callers that recycle payload
// buffers.
func (r Report) AppendMarshal(buf []byte) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], math.Float64bits(r.Value))
	buf = append(buf, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], uint64(r.At))
	buf = append(buf, tmp[:]...)
	if len(r.App) > 255 || len(r.Phase) > 255 {
		panic("progress: name longer than 255 bytes")
	}
	buf = append(buf, byte(len(r.App)))
	buf = append(buf, r.App...)
	buf = append(buf, byte(len(r.Phase)))
	buf = append(buf, r.Phase...)
	return buf
}

// UnmarshalReport decodes a payload produced by Marshal.
func UnmarshalReport(b []byte) (Report, error) {
	return decodeReport(b, nil)
}

// Decoder decodes report payloads while interning the App and Phase
// strings: an engine run decodes tens of thousands of reports that carry
// the same handful of names, and a plain UnmarshalReport allocates two
// fresh strings per report. A Decoder is not safe for concurrent use;
// each consumer (one per engine) owns its own.
type Decoder struct {
	names map[string]string
}

// NewDecoder returns an empty interning decoder.
func NewDecoder() *Decoder { return &Decoder{names: make(map[string]string)} }

// Unmarshal decodes a payload, reusing previously seen name strings.
func (d *Decoder) Unmarshal(b []byte) (Report, error) {
	return decodeReport(b, d)
}

// intern returns the canonical string for b, allocating only on first
// sight (the map lookup keyed by string(b) does not allocate).
func (d *Decoder) intern(b []byte) string {
	if s, ok := d.names[string(b)]; ok {
		return s
	}
	s := string(b)
	d.names[s] = s
	return s
}

func decodeReport(b []byte, d *Decoder) (Report, error) {
	if len(b) < 18 {
		return Report{}, fmt.Errorf("progress: payload too short (%d bytes)", len(b))
	}
	var r Report
	r.Value = math.Float64frombits(binary.BigEndian.Uint64(b[0:8]))
	r.At = time.Duration(binary.BigEndian.Uint64(b[8:16]))
	pos := 16
	appLen := int(b[pos])
	pos++
	if pos+appLen+1 > len(b) {
		return Report{}, fmt.Errorf("progress: truncated app name")
	}
	appB := b[pos : pos+appLen]
	pos += appLen
	phaseLen := int(b[pos])
	pos++
	if pos+phaseLen > len(b) {
		return Report{}, fmt.Errorf("progress: truncated phase name")
	}
	phaseB := b[pos : pos+phaseLen]
	if d != nil {
		r.App = d.intern(appB)
		r.Phase = d.intern(phaseB)
	} else {
		r.App = string(appB)
		r.Phase = string(phaseB)
	}
	return r, nil
}

// Publisher is the subset of the pub/sub layer a Reporter needs.
type Publisher interface {
	PublishPayload(topic string, payload []byte) int
}

// BufferSource is an optional second interface a Publisher can implement
// to supply recycled payload buffers. AcquirePayload returns a zero-length
// slice with capacity at least n; the Reporter fills it and hands it back
// through PublishPayload, after which ownership (and any recycling) is the
// publisher's problem. Publishers that cannot prove the payload's lifetime
// ends at delivery must not implement it.
type BufferSource interface {
	AcquirePayload(n int) []byte
}

// Reporter is the instrumentation half: the application calls Publish for
// every completed unit of work (timestep, block, batch, GMRES iteration).
// Publishing is lossy and non-blocking, like the paper's ZeroMQ sockets.
type Reporter struct {
	app   string
	pub   Publisher
	bufs  BufferSource // non-nil iff pub recycles payload buffers
	sent  uint64
	topic string
}

// NewReporter returns a reporter for the named application.
func NewReporter(app string, pub Publisher) *Reporter {
	bufs, _ := pub.(BufferSource)
	return &Reporter{app: app, pub: pub, bufs: bufs, topic: Topic(app)}
}

// Publish emits one progress report.
func (r *Reporter) Publish(phase string, value float64, at time.Duration) {
	r.sent++
	rep := Report{App: r.app, Phase: phase, Value: value, At: at}
	buf := make([]byte, 0, rep.MarshaledSize())
	if r.bufs != nil {
		buf = r.bufs.AcquirePayload(rep.MarshaledSize())
	}
	r.pub.PublishPayload(r.topic, rep.AppendMarshal(buf))
}

// Sent returns how many reports have been published.
func (r *Reporter) Sent() uint64 { return r.sent }

// Sample is one aggregated online-performance observation: metric units
// per second over one aggregation window.
type Sample struct {
	At      time.Duration // end of the window
	Rate    float64       // metric units per second
	Reports int           // raw reports aggregated into this sample
	Phase   string        // phase of the last report in the window ("" if none)
}

// Monitor aggregates raw reports into per-second online performance, the
// way the paper's framework "collect[s] and average[s] once every
// second". It is fed raw reports (from a bus subscription drain) and
// closed out once per window by Flush.
type Monitor struct {
	window    time.Duration
	pending   []Report
	samples   []Sample
	total     float64
	reports   uint64
	lastFlush time.Duration

	// Degraded-signal bookkeeping: a monitor is a trust boundary — its
	// input arrives over a lossy transport from instrumented applications,
	// so it validates before aggregating.
	rejected     uint64
	history      []float64 // ring of recently accepted values
	histPos      int
	emptyWindows int

	// medScratch is the sort buffer median reuses: the outlier guard runs
	// once per accepted report, and a fresh 32-element copy per report was
	// a measurable slice churn on the engine hot path.
	medScratch []float64
}

// historySize is the outlier-guard ring length; outlierMinHistory is how
// many accepted values it needs before the guard engages (a cold monitor
// must not reject a legitimate first burst); outlierFactor is how far
// beyond the recent median a value must be to be rejected. 32× passes any
// plausible phase transition (the paper's phases differ by ~2–4×) while
// stopping counter-glitch spikes (2^10 and up).
const (
	historySize       = 32
	outlierMinHistory = 8
	outlierFactor     = 32
)

// NewMonitor returns a monitor aggregating over the given window
// (the paper uses one second).
func NewMonitor(window time.Duration) *Monitor {
	if window <= 0 {
		panic("progress: non-positive aggregation window")
	}
	return &Monitor{window: window}
}

// Window returns the aggregation window.
func (m *Monitor) Window() time.Duration { return m.window }

// Offer feeds one raw report into the current window. It returns false —
// and aggregates nothing — for reports that cannot be trusted: NaN,
// infinite, or negative values (a corrupted payload decodes to a valid
// Report struct carrying garbage), and extreme outliers relative to the
// recently accepted history (a glitched counter read published as
// progress). One poisoned report must not corrupt the rate the control
// loop steers by.
func (m *Monitor) Offer(r Report) bool {
	if math.IsNaN(r.Value) || math.IsInf(r.Value, 0) || r.Value < 0 {
		m.rejected++
		return false
	}
	if len(m.history) >= outlierMinHistory {
		m.medScratch = append(m.medScratch[:0], m.history...)
		if med := median(m.medScratch); med > 0 && r.Value > med*outlierFactor {
			m.rejected++
			return false
		}
	}
	if len(m.history) < historySize {
		m.history = append(m.history, r.Value)
	} else {
		m.history[m.histPos] = r.Value
		m.histPos = (m.histPos + 1) % historySize
	}
	m.pending = append(m.pending, r)
	m.total += r.Value
	m.reports++
	return true
}

// median returns the median of vs, sorting it in place (callers pass a
// scratch copy, never the live history ring).
func median(vs []float64) float64 {
	sort.Float64s(vs)
	n := len(vs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// Flush closes the window ending at now and records its Sample. Windows
// with no reports record a zero rate — exactly the artifact the paper
// observes for OpenMC, whose batch duration aliases against the
// aggregation window. The rate divisor is the actual time since the
// previous flush (so a partial final window is not under-reported),
// falling back to the nominal window for the first flush at or before
// one window of elapsed time.
func (m *Monitor) Flush(now time.Duration) Sample {
	elapsed := (now - m.lastFlush).Seconds()
	if elapsed <= 0 {
		elapsed = m.window.Seconds()
	}
	m.lastFlush = now
	var sum float64
	phase := ""
	for _, r := range m.pending {
		sum += r.Value
		phase = r.Phase
	}
	s := Sample{
		At:      now,
		Rate:    sum / elapsed,
		Reports: len(m.pending),
		Phase:   phase,
	}
	if s.Reports == 0 {
		m.emptyWindows++
	} else {
		m.emptyWindows = 0
	}
	m.pending = m.pending[:0]
	m.samples = append(m.samples, s)
	return s
}

// NextFlushAt returns the end of the window currently being aggregated:
// the monitor's NextEventAt hook for macro-stepping drivers, which must
// not stride past a window edge without closing it.
func (m *Monitor) NextFlushAt() time.Duration { return m.lastFlush + m.window }

// EmptyWindows returns how many consecutive windows (ending with the most
// recent Flush) closed with zero reports — the staleness signal consumers
// use to distinguish "application reports slowly" (isolated zero windows,
// the OpenMC aliasing artifact) from "signal is gone" (a run of them).
func (m *Monitor) EmptyWindows() int { return m.emptyWindows }

// Rejected returns how many offered reports were refused as untrustworthy.
func (m *Monitor) Rejected() uint64 { return m.rejected }

// Samples returns every recorded sample.
func (m *Monitor) Samples() []Sample { return m.samples }

// Rates returns just the per-window rates.
func (m *Monitor) Rates() []float64 {
	out := make([]float64, len(m.samples))
	for i, s := range m.samples {
		out[i] = s.Rate
	}
	return out
}

// TotalUnits returns the sum of all report values seen.
func (m *Monitor) TotalUnits() float64 { return m.total }

// Reports returns the raw report count seen.
func (m *Monitor) Reports() uint64 { return m.reports }

// MeanRate returns total units divided by observed time (n windows).
func (m *Monitor) MeanRate() float64 {
	if len(m.samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range m.samples {
		sum += s.Rate
	}
	return sum / float64(len(m.samples))
}
