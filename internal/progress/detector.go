package progress

import "fmt"

// PhaseChange reports one detected shift in the online-performance
// level.
type PhaseChange struct {
	Sample   int // index of the first sample of the new level
	OldLevel float64
	NewLevel float64
}

// PhaseDetector detects phase boundaries in an online-performance stream
// *as it arrives* — the runtime counterpart of the paper's Fig 1 (right)
// observation that QMCPACK's VMC1/VMC2/DMC phases compute blocks at
// clearly different rates. A power manager can use the events to
// re-characterize the application per phase.
//
// The detector maintains the running mean of the current level; when
// MinLen consecutive samples deviate from it by more than RelTol, it
// commits a phase change to the deviating samples' mean. Zero samples
// (reporting artifacts) are ignored.
type PhaseDetector struct {
	relTol float64
	minLen int

	n       int // samples offered (excluding zeros)
	level   float64
	levelN  int
	pending []float64
	changes []PhaseChange
}

// NewPhaseDetector returns a detector. relTol is the relative deviation
// that counts as "off-level" (e.g. 0.2); minLen is how many consecutive
// off-level samples commit a phase change (e.g. 3).
func NewPhaseDetector(relTol float64, minLen int) (*PhaseDetector, error) {
	if relTol <= 0 || relTol >= 1 {
		return nil, fmt.Errorf("progress: phase detector relTol %v outside (0,1)", relTol)
	}
	if minLen < 1 {
		return nil, fmt.Errorf("progress: phase detector minLen %d < 1", minLen)
	}
	return &PhaseDetector{relTol: relTol, minLen: minLen}, nil
}

// Level returns the current phase level estimate (0 before any sample).
func (d *PhaseDetector) Level() float64 { return d.level }

// Changes returns every committed phase change.
func (d *PhaseDetector) Changes() []PhaseChange { return d.changes }

// Offer feeds one per-window rate and reports whether it committed a
// phase change.
func (d *PhaseDetector) Offer(rate float64) bool {
	if rate <= 0 {
		return false // empty-window artifact
	}
	d.n++
	if d.levelN == 0 {
		d.level = rate
		d.levelN = 1
		return false
	}
	lo := d.level * (1 - d.relTol)
	hi := d.level * (1 + d.relTol)
	if rate >= lo && rate <= hi {
		// On-level: absorb into the running mean; forgive any pending
		// outliers as noise.
		d.level = (d.level*float64(d.levelN) + rate) / float64(d.levelN+1)
		d.levelN++
		d.pending = d.pending[:0]
		return false
	}
	d.pending = append(d.pending, rate)
	if len(d.pending) < d.minLen {
		return false
	}
	// Sustained deviation: commit the new level.
	var sum float64
	for _, v := range d.pending {
		sum += v
	}
	newLevel := sum / float64(len(d.pending))
	d.changes = append(d.changes, PhaseChange{
		Sample:   d.n - len(d.pending),
		OldLevel: d.level,
		NewLevel: newLevel,
	})
	d.level = newLevel
	d.levelN = len(d.pending)
	d.pending = d.pending[:0]
	return true
}
