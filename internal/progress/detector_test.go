package progress

import (
	"math"
	"testing"
)

func feed(t *testing.T, d *PhaseDetector, vals []float64) int {
	t.Helper()
	changes := 0
	for _, v := range vals {
		if d.Offer(v) {
			changes++
		}
	}
	return changes
}

func TestDetectorValidation(t *testing.T) {
	if _, err := NewPhaseDetector(0, 3); err == nil {
		t.Fatal("relTol 0 accepted")
	}
	if _, err := NewPhaseDetector(1.5, 3); err == nil {
		t.Fatal("relTol 1.5 accepted")
	}
	if _, err := NewPhaseDetector(0.2, 0); err == nil {
		t.Fatal("minLen 0 accepted")
	}
}

func TestDetectorSteadyNoChanges(t *testing.T) {
	d, _ := NewPhaseDetector(0.2, 3)
	vals := make([]float64, 50)
	for i := range vals {
		vals[i] = 1080 + float64(i%5) // tiny wobble
	}
	if n := feed(t, d, vals); n != 0 {
		t.Fatalf("steady stream produced %d changes", n)
	}
	if math.Abs(d.Level()-1082) > 2 {
		t.Fatalf("level = %v", d.Level())
	}
}

func TestDetectorQMCPACKPhases(t *testing.T) {
	d, _ := NewPhaseDetector(0.2, 3)
	var vals []float64
	for i := 0; i < 10; i++ {
		vals = append(vals, 8)
	}
	for i := 0; i < 10; i++ {
		vals = append(vals, 12)
	}
	for i := 0; i < 10; i++ {
		vals = append(vals, 16)
	}
	if n := feed(t, d, vals); n != 2 {
		t.Fatalf("three-phase stream produced %d changes, want 2", n)
	}
	ch := d.Changes()
	if ch[0].Sample != 10 || math.Abs(ch[0].OldLevel-8) > 0.5 || math.Abs(ch[0].NewLevel-12) > 0.5 {
		t.Fatalf("first change = %+v", ch[0])
	}
	if ch[1].Sample != 20 || math.Abs(ch[1].NewLevel-16) > 0.5 {
		t.Fatalf("second change = %+v", ch[1])
	}
}

func TestDetectorTransientForgiven(t *testing.T) {
	d, _ := NewPhaseDetector(0.2, 3)
	// Two outliers (below minLen) then back on level: no change.
	vals := []float64{10, 10, 10, 20, 20, 10, 10, 10, 10}
	if n := feed(t, d, vals); n != 0 {
		t.Fatalf("transient produced %d changes", n)
	}
}

func TestDetectorIgnoresZeroArtifacts(t *testing.T) {
	d, _ := NewPhaseDetector(0.2, 3)
	vals := []float64{100, 0, 100, 0, 0, 100, 100, 0, 100}
	if n := feed(t, d, vals); n != 0 {
		t.Fatalf("zero artifacts produced %d changes", n)
	}
	if d.Level() != 100 {
		t.Fatalf("level = %v", d.Level())
	}
}

func TestDetectorAMGNoisyNoChanges(t *testing.T) {
	d, _ := NewPhaseDetector(0.25, 3)
	var vals []float64
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			vals = append(vals, 2.5)
		} else {
			vals = append(vals, 3.0)
		}
	}
	if n := feed(t, d, vals); n != 0 {
		t.Fatalf("AMG-style noise produced %d changes", n)
	}
}

func TestDetectorDownwardShift(t *testing.T) {
	d, _ := NewPhaseDetector(0.2, 2)
	var vals []float64
	for i := 0; i < 8; i++ {
		vals = append(vals, 800000)
	}
	for i := 0; i < 8; i++ {
		vals = append(vals, 520000) // the step-cap regime of Fig 3
	}
	if n := feed(t, d, vals); n != 1 {
		t.Fatalf("downward shift produced %d changes, want 1", n)
	}
	if d.Changes()[0].NewLevel > d.Changes()[0].OldLevel {
		t.Fatal("change direction wrong")
	}
}
