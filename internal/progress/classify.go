package progress

import (
	"progresscap/internal/stats"
)

// Behavior describes the shape of an online-performance series, matching
// the characterization in the paper's Fig 1: LAMMPS/STREAM are steady,
// AMG fluctuates around a level, QMCPACK shows distinct phased levels.
type Behavior int

const (
	// Steady: the metric holds one consistent level.
	Steady Behavior = iota
	// Fluctuating: one level with substantial noise that "needs to be
	// averaged out" (the paper's description of AMG).
	Fluctuating
	// Phased: two or more sustained, clearly separated levels.
	Phased
)

func (b Behavior) String() string {
	switch b {
	case Steady:
		return "steady"
	case Fluctuating:
		return "fluctuating"
	case Phased:
		return "phased"
	default:
		return "unknown"
	}
}

// classification tuning.
const (
	steadyCV        = 0.05 // coefficient of variation below which a segment is steady
	segmentRelTol   = 0.20 // a value within ±20% of the running segment mean extends it
	phaseMinLen     = 5    // sustained segments need at least this many samples
	phaseLevelRatio = 1.30 // two segment means this far apart are distinct levels
)

// Classify analyses a series of per-window rates. Zero-rate samples are
// ignored (they are reporting artifacts, not application behaviour — see
// Monitor.Flush). Fewer than four usable samples classify as Steady.
func Classify(rates []float64) Behavior {
	var vals []float64
	for _, v := range rates {
		if v > 0 {
			vals = append(vals, v)
		}
	}
	if len(vals) < 4 {
		return Steady
	}

	// Segment into runs of similar level.
	type segment struct {
		mean float64
		n    int
	}
	var segs []segment
	cur := segment{mean: vals[0], n: 1}
	for _, v := range vals[1:] {
		lo, hi := cur.mean*(1-segmentRelTol), cur.mean*(1+segmentRelTol)
		if v >= lo && v <= hi {
			cur.mean = (cur.mean*float64(cur.n) + v) / float64(cur.n+1)
			cur.n++
			continue
		}
		segs = append(segs, cur)
		cur = segment{mean: v, n: 1}
	}
	segs = append(segs, cur)

	// Two sustained segments at clearly different levels → phased.
	var sustained []segment
	for _, s := range segs {
		if s.n >= phaseMinLen {
			sustained = append(sustained, s)
		}
	}
	for i := 0; i < len(sustained); i++ {
		for j := i + 1; j < len(sustained); j++ {
			a, b := sustained[i].mean, sustained[j].mean
			if a > b {
				a, b = b, a
			}
			if a > 0 && b/a >= phaseLevelRatio {
				return Phased
			}
		}
	}

	if stats.CoefVar(vals) < steadyCV {
		return Steady
	}
	return Fluctuating
}
