package journal

import (
	"bytes"
	"testing"
	"time"
)

// fuzzSeedLog builds a small valid journal image for seeding the fuzzer.
func fuzzSeedLog(tb testing.TB) []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := []Record{
		{Kind: KindCapDecision, Epoch: 1, At: time.Second, BudgetW: 120, Setting: 95},
		{Kind: KindLeaseGrant, Epoch: 2, At: 2 * time.Second, Node: "n1", CapW: 80, TTL: 3 * time.Second, LeaseEpoch: 1, Seq: 4},
		{Kind: KindEpochChange, At: 3 * time.Second, LeaseEpoch: 2},
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

// FuzzReplay hardens journal recovery against arbitrary on-disk images:
// torn writes, duplicated frames, and bit flips must never panic, never
// return an error (damage is a stats condition, not a failure), and —
// the crash-safety contract — never replay anything past the first
// damaged byte.
func FuzzReplay(f *testing.F) {
	good := fuzzSeedLog(f)
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:len(good)-3])                               // torn final write
	f.Add(append(good, good...))                            // duplicated log image
	f.Add(append(good, good[:11]...))                       // duplicated torn frame
	f.Add([]byte{frameMagic, 0, 0, 0})                      // short header
	f.Add([]byte{0x00, 1, 2, 3, 4, 5, 6, 7})                // bad magic
	f.Add([]byte{frameMagic, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // huge length
	flipped := append([]byte(nil), good...)
	flipped[5] ^= 0x40 // CRC bit flip in the first frame
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, st, err := ReplayBytes(data)
		if err != nil {
			t.Fatalf("in-memory replay returned an error: %v", err)
		}
		if st.Records != len(recs) {
			t.Fatalf("stats say %d records, got %d", st.Records, len(recs))
		}
		if st.DroppedBytes < 0 || st.DroppedBytes > len(data) {
			t.Fatalf("dropped %d of %d bytes", st.DroppedBytes, len(data))
		}
		if !st.DamagedTail && (st.DroppedBytes != 0 || st.TailError != "") {
			t.Fatalf("clean tail but drops reported: %+v", st)
		}
		if st.DamagedTail && st.TailError == "" {
			t.Fatal("damaged tail with no diagnosis")
		}
		for _, r := range recs {
			if r.Kind == 0 {
				t.Fatal("replay admitted a kindless record")
			}
		}

		// Never replay past damage: everything decoded must come from the
		// intact prefix, and replaying that prefix alone must reproduce
		// the exact same records with a clean tail.
		prefix := data[:len(data)-st.DroppedBytes]
		recs2, st2, err := ReplayBytes(prefix)
		if err != nil {
			t.Fatalf("prefix replay errored: %v", err)
		}
		if st2.DamagedTail || st2.DroppedBytes != 0 {
			t.Fatalf("intact prefix replayed as damaged: %+v", st2)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("prefix replay %d records != full replay %d", len(recs2), len(recs))
		}
		for i := range recs {
			if recs[i] != recs2[i] {
				t.Fatalf("record %d differs between full and prefix replay", i)
			}
		}

		// Recovery over whatever survived must not panic either.
		_ = Recover(recs)
	})
}
