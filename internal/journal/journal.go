// Package journal is the crash-safety spine of the control plane: an
// append-only, CRC-framed write-ahead log of every cap decision, model
// fit, and trust-state transition the policy daemon makes.
//
// The paper's setup assumes the NRM daemon never dies; in production the
// daemon is exactly the component that crashes or gets OOM-killed while
// the RAPL cap it programmed stays latched in hardware. The journal makes
// the daemon crash-only: every externally visible action is logged
// *before* it takes effect, and a restarted daemon replays the log to
// restore its pre-crash cap, β-fit, and degraded-signal backoff state
// instead of re-calibrating against a plant that is still capped.
//
// # Frame format
//
// Each record is framed independently so a torn final write can never
// corrupt the records before it:
//
//	offset  size  field
//	0       1     magic (0xA5)
//	1       3     payload length, little-endian (max 1 MiB)
//	4       4     CRC32 (IEEE) of the payload
//	8       n     payload (JSON-encoded Record)
//
// Replay reads frames until EOF. A short header, short payload, bad
// magic, implausible length, or CRC mismatch marks the *tail* as
// damaged: everything before it is returned, everything from the first
// bad byte on is dropped and reported, never mis-replayed. There is no
// resynchronization past a bad frame — after a torn write, anything that
// follows is untrustworthy by construction.
package journal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// frameMagic guards every frame header; random garbage at the tail of a
// torn file is overwhelmingly unlikely to match it.
const frameMagic = 0xA5

// maxPayload bounds a frame so a corrupt length field cannot make replay
// attempt a gigabyte allocation.
const maxPayload = 1 << 20

const headerSize = 8

// Kind discriminates record payloads.
type Kind uint8

// Record kinds.
const (
	// KindCapDecision logs one epoch's enforcement choice (the cap or
	// frequency the daemon is about to actuate).
	KindCapDecision Kind = iota + 1
	// KindModelFit logs the parameters of a completed model fit.
	KindModelFit
	// KindTrustTransition logs one degraded-signal state machine edge,
	// including the backoff it left behind.
	KindTrustTransition
	// KindLeaseGrant logs one time-bounded, epoch-fenced power-cap lease
	// the job manager is about to send to a node. Write-ahead discipline
	// makes the lease ledger reconstructible: a failover replays every
	// unexpired grant — whichever manager epoch issued it — and charges
	// it against the job budget until its TTL passes.
	KindLeaseGrant
	// KindEpochChange logs a fencing-epoch adoption: a standby taking
	// over as primary stamps the journal with its new, strictly higher
	// epoch before issuing any grant. A deposed primary's later appends
	// carry a lower epoch and are rejected by the fenced log.
	KindEpochChange
	// KindHeartbeat is an epoch-stamped liveness record the primary
	// appends on epochs with no grants, so a standby can distinguish an
	// idle primary from a dead one.
	KindHeartbeat
)

func (k Kind) String() string {
	switch k {
	case KindCapDecision:
		return "cap-decision"
	case KindModelFit:
		return "model-fit"
	case KindTrustTransition:
		return "trust-transition"
	case KindLeaseGrant:
		return "lease-grant"
	case KindEpochChange:
		return "epoch-change"
	case KindHeartbeat:
		return "heartbeat"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Record is one journal entry. A single struct covers all kinds (unused
// fields stay zero) so replay needs no type registry; Kind says which
// fields are meaningful.
type Record struct {
	Kind  Kind          `json:"k"`
	Epoch int           `json:"e"`
	At    time.Duration `json:"t"`

	// KindCapDecision.
	BudgetW float64 `json:"bw,omitempty"`
	Knob    int     `json:"kn,omitempty"`
	Setting float64 `json:"set,omitempty"`
	Mode    int     `json:"m,omitempty"`

	// KindModelFit.
	Beta     float64 `json:"beta,omitempty"`
	BaseRate float64 `json:"br,omitempty"`
	BasePowW float64 `json:"bp,omitempty"`

	// KindTrustTransition.
	From    int    `json:"from,omitempty"`
	To      int    `json:"to,omitempty"`
	Backoff int    `json:"bo,omitempty"`
	Reason  string `json:"why,omitempty"`

	// KindLeaseGrant / KindEpochChange / KindHeartbeat. LeaseEpoch is the
	// issuing manager's fencing epoch; Seq orders grants within a reign.
	Node       string        `json:"n,omitempty"`
	CapW       float64       `json:"cw,omitempty"`
	TTL        time.Duration `json:"ttl,omitempty"`
	LeaseEpoch uint64        `json:"le,omitempty"`
	Seq        uint64        `json:"sq,omitempty"`
}

// syncer is what a Writer calls after each append when the underlying
// sink supports it (os.File does).
type syncer interface{ Sync() error }

// Writer appends framed records to a sink. It is safe for concurrent
// use. Appends are write-ahead: the frame is fully written (and fsynced,
// when the sink supports Sync) before Append returns, so a caller that
// actuates hardware only after Append returns can always recover the
// actuation from the journal.
type Writer struct {
	mu      sync.Mutex
	w       io.Writer
	sync    syncer
	closed  bool
	appends int
}

// NewWriter wraps a sink. If the sink implements Sync (an *os.File), every
// Append is durable before it returns.
func NewWriter(w io.Writer) *Writer {
	jw := &Writer{w: w}
	if s, ok := w.(syncer); ok {
		jw.sync = s
	}
	return jw
}

// Create truncates/creates the journal file at path and returns a Writer
// over it. The caller owns closing via Close.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create: %w", err)
	}
	return NewWriter(f), nil
}

// Open opens (or creates) the journal at path for appending — the
// restart path: ReplayFile the existing log first, then Open to keep
// journaling after the recovered record. A damaged tail left by the
// crash stays in the file; replay drops it deterministically on every
// subsequent recovery, so appending after it is safe only once the
// caller truncates — which Open does, to exactly the replayable prefix.
func Open(path string) (*Writer, error) {
	_, st, err := ReplayFile(path)
	if err != nil {
		return nil, err
	}
	if st.DroppedBytes > 0 {
		// Cut the torn tail so new frames land on a clean frame boundary;
		// otherwise every future replay would stop at the old damage and
		// silently drop everything appended after it.
		info, serr := os.Stat(path)
		if serr != nil {
			return nil, fmt.Errorf("journal: stat: %w", serr)
		}
		if terr := os.Truncate(path, info.Size()-int64(st.DroppedBytes)); terr != nil {
			return nil, fmt.Errorf("journal: truncating damaged tail: %w", terr)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open: %w", err)
	}
	return NewWriter(f), nil
}

// Append frames, writes, and syncs one record.
func (w *Writer) Append(rec Record) error {
	frame, err := encodeFrame(rec)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("journal: append after Close")
	}
	if _, err := w.w.Write(frame); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if w.sync != nil {
		if err := w.sync.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	w.appends++
	return nil
}

// Appends returns how many records this writer has durably appended.
func (w *Writer) Appends() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appends
}

// Close syncs and, when the sink is a closer, closes it. Further Appends
// fail.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.sync != nil {
		if err := w.sync.Sync(); err != nil {
			return err
		}
	}
	if c, ok := w.w.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

func encodeFrame(rec Record) ([]byte, error) {
	if rec.Kind == 0 {
		return nil, fmt.Errorf("journal: record without kind")
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encode: %w", err)
	}
	if len(payload) > maxPayload {
		return nil, fmt.Errorf("journal: payload %d exceeds %d bytes", len(payload), maxPayload)
	}
	frame := make([]byte, headerSize+len(payload))
	frame[0] = frameMagic
	frame[1] = byte(len(payload))
	frame[2] = byte(len(payload) >> 8)
	frame[3] = byte(len(payload) >> 16)
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[headerSize:], payload)
	return frame, nil
}

// ReplayStats describes what Replay found beyond the clean records.
type ReplayStats struct {
	// Records is how many intact records were decoded.
	Records int
	// DamagedTail is true when the log ended in a torn or corrupt frame
	// (short header, short payload, bad magic, implausible length, CRC
	// mismatch, or undecodable payload).
	DamagedTail bool
	// TailError describes the damage (empty when the tail was clean).
	TailError string
	// DroppedBytes is how many trailing bytes were discarded.
	DroppedBytes int
}

// Replay decodes every intact record from r. A damaged tail is not an
// error: the intact prefix is returned and the damage is described in
// the stats, because recovering yesterday's good decisions matters more
// than the torn final write that crashed the daemon. Only a read failure
// of the underlying stream returns a non-nil error.
func Replay(r io.Reader) ([]Record, ReplayStats, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, ReplayStats{}, fmt.Errorf("journal: replay read: %w", err)
	}
	return ReplayBytes(data)
}

// ReplayBytes is Replay over an in-memory image.
func ReplayBytes(data []byte) ([]Record, ReplayStats, error) {
	var recs []Record
	var st ReplayStats
	off := 0
	damage := func(format string, args ...interface{}) {
		st.DamagedTail = true
		st.TailError = fmt.Sprintf(format, args...)
		st.DroppedBytes = len(data) - off
	}
	for off < len(data) {
		if len(data)-off < headerSize {
			damage("truncated header: %d bytes", len(data)-off)
			break
		}
		h := data[off : off+headerSize]
		if h[0] != frameMagic {
			damage("bad frame magic 0x%02x at offset %d", h[0], off)
			break
		}
		n := int(h[1]) | int(h[2])<<8 | int(h[3])<<16
		if n > maxPayload {
			damage("implausible payload length %d at offset %d", n, off)
			break
		}
		if len(data)-off-headerSize < n {
			damage("truncated payload: want %d bytes, have %d", n, len(data)-off-headerSize)
			break
		}
		payload := data[off+headerSize : off+headerSize+n]
		if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(h[4:8]); got != want {
			damage("CRC mismatch at offset %d: %08x != %08x", off, got, want)
			break
		}
		var rec Record
		dec := json.NewDecoder(bytes.NewReader(payload))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil || rec.Kind == 0 {
			damage("undecodable payload at offset %d: %v", off, err)
			break
		}
		recs = append(recs, rec)
		st.Records++
		off += headerSize + n
	}
	return recs, st, nil
}

// ReplayFile replays the journal at path. A missing file is an empty
// journal, not an error — a first boot has nothing to recover.
func ReplayFile(path string) ([]Record, ReplayStats, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, ReplayStats{}, nil
	}
	if err != nil {
		return nil, ReplayStats{}, fmt.Errorf("journal: open: %w", err)
	}
	defer f.Close()
	return Replay(f)
}

// State is the daemon state reconstructed from a replayed journal — what
// a restarted policy daemon needs to resume where it crashed instead of
// re-calibrating.
type State struct {
	// Epoch is the next epoch index (one past the last journaled
	// decision).
	Epoch int
	// At is the virtual time of the last record.
	At time.Duration

	// Last actuated decision.
	BudgetW float64
	Knob    int
	Setting float64
	Mode    int

	// Model fit (Fitted reports whether a fit was journaled).
	Fitted   bool
	Beta     float64
	BaseRate float64
	BasePowW float64

	// Backoff is the degraded-signal backoff the daemon had accrued.
	Backoff int

	// Decisions and Transitions count the journaled records by kind.
	Decisions   int
	Transitions int
}

// Recover folds a replayed record sequence into the resumable state.
// Recovery is idempotent in the face of a duplicated final record — a
// daemon that crashed between actuating and acknowledging re-appends the
// same decision on restart, so an exact consecutive duplicate is folded
// once.
func Recover(recs []Record) State {
	var s State
	for i, r := range recs {
		if i > 0 && r == recs[i-1] {
			continue
		}
		if r.At > s.At {
			s.At = r.At
		}
		switch r.Kind {
		case KindCapDecision:
			s.BudgetW = r.BudgetW
			s.Knob = r.Knob
			s.Setting = r.Setting
			s.Mode = r.Mode
			s.Decisions++
			if r.Epoch+1 > s.Epoch {
				s.Epoch = r.Epoch + 1
			}
		case KindModelFit:
			s.Fitted = true
			s.Beta = r.Beta
			s.BaseRate = r.BaseRate
			s.BasePowW = r.BasePowW
		case KindTrustTransition:
			s.Mode = r.To
			s.Backoff = r.Backoff
			s.Transitions++
		}
	}
	return s
}
