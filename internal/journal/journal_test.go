package journal

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func sampleRecords() []Record {
	return []Record{
		{Kind: KindCapDecision, Epoch: 0, At: 1 * time.Second, BudgetW: 0, Knob: 0},
		{Kind: KindCapDecision, Epoch: 1, At: 2 * time.Second, BudgetW: 0, Knob: 0},
		{Kind: KindModelFit, Epoch: 3, At: 3 * time.Second, Beta: 0.92, BaseRate: 5400, BasePowW: 151},
		{Kind: KindCapDecision, Epoch: 3, At: 3 * time.Second, BudgetW: 120, Knob: 1, Setting: 120},
		{Kind: KindTrustTransition, Epoch: 5, At: 5 * time.Second, From: 0, To: 1, Backoff: 2, Reason: "silent"},
		{Kind: KindCapDecision, Epoch: 5, At: 5 * time.Second, BudgetW: 120, Knob: 1, Setting: 96, Mode: 1},
	}
}

func journalImage(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	want := sampleRecords()
	got, st, err := ReplayBytes(journalImage(t, want))
	if err != nil {
		t.Fatal(err)
	}
	if st.DamagedTail {
		t.Fatalf("clean journal reported damaged: %s", st.TailError)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestRecoveryDamage is the table-driven recovery matrix the crash-safety
// contract hangs on: a damaged tail is detected, dropped, and never
// mis-replayed, while the intact prefix always survives.
func TestRecoveryDamage(t *testing.T) {
	recs := sampleRecords()
	clean := journalImage(t, recs)
	// Byte offset where the final record's frame begins.
	lastStart := len(journalImage(t, recs[:len(recs)-1]))

	cases := []struct {
		name        string
		mutate      func([]byte) []byte
		wantRecords int
		wantDamage  bool
	}{
		{"empty file", func(b []byte) []byte { return nil }, 0, false},
		{"clean", func(b []byte) []byte { return b }, len(recs), false},
		{"truncated mid-payload", func(b []byte) []byte { return b[:len(b)-3] }, len(recs) - 1, true},
		{"truncated mid-header", func(b []byte) []byte { return b[:lastStart+4] }, len(recs) - 1, true},
		{"flipped CRC byte", func(b []byte) []byte {
			b[lastStart+5] ^= 0xFF
			return b
		}, len(recs) - 1, true},
		{"flipped payload byte", func(b []byte) []byte {
			b[lastStart+headerSize+1] ^= 0x10
			return b
		}, len(recs) - 1, true},
		{"bad magic", func(b []byte) []byte {
			b[lastStart] = 0x00
			return b
		}, len(recs) - 1, true},
		{"garbage appended", func(b []byte) []byte {
			return append(b, 0xDE, 0xAD, 0xBE, 0xEF)
		}, len(recs), true},
		{"implausible length", func(b []byte) []byte {
			b[lastStart+1], b[lastStart+2], b[lastStart+3] = 0xFF, 0xFF, 0xFF
			return b
		}, len(recs) - 1, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img := tc.mutate(append([]byte(nil), clean...))
			got, st, err := ReplayBytes(img)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != tc.wantRecords {
				t.Fatalf("replayed %d records, want %d (tail: %s)", len(got), tc.wantRecords, st.TailError)
			}
			if st.DamagedTail != tc.wantDamage {
				t.Fatalf("DamagedTail=%v, want %v (tail: %s)", st.DamagedTail, tc.wantDamage, st.TailError)
			}
			// Whatever survived must be an exact prefix — a corrupt tail
			// must never replay a record that was not written.
			for i := range got {
				if got[i] != recs[i] {
					t.Fatalf("record %d mutated by damage: %+v", i, got[i])
				}
			}
			// The critical safety property: the recovered cap is one that
			// was actually journaled, never a corrupted value.
			s := Recover(got)
			if s.Decisions > 0 && s.Setting != 0 && s.Setting != 120 && s.Setting != 96 {
				t.Fatalf("recovered cap %v was never journaled", s.Setting)
			}
		})
	}
}

func TestRecoverState(t *testing.T) {
	s := Recover(sampleRecords())
	if s.Epoch != 6 {
		t.Fatalf("Epoch = %d, want 6", s.Epoch)
	}
	if !s.Fitted || s.Beta != 0.92 || s.BaseRate != 5400 || s.BasePowW != 151 {
		t.Fatalf("fit not recovered: %+v", s)
	}
	if s.BudgetW != 120 || s.Setting != 96 || s.Knob != 1 {
		t.Fatalf("last decision not recovered: %+v", s)
	}
	if s.Mode != 1 || s.Backoff != 2 {
		t.Fatalf("trust state not recovered: %+v", s)
	}
	if s.Decisions != 4 || s.Transitions != 1 {
		t.Fatalf("counts wrong: %+v", s)
	}
}

// TestRecoverDuplicateFinalRecord: a daemon that crashed between writing
// the journal entry and acknowledging it re-appends the same record on
// restart. Folding the duplicate must land on the identical state.
func TestRecoverDuplicateFinalRecord(t *testing.T) {
	recs := sampleRecords()
	dup := append(append([]Record(nil), recs...), recs[len(recs)-1])
	if Recover(dup) != Recover(recs) {
		t.Fatalf("duplicate final record changed recovery:\n%+v\nvs\n%+v", Recover(dup), Recover(recs))
	}
}

// TestFuzzSeededRecovery hammers replay with random mutations of a valid
// journal: arbitrary single-byte flips and truncations anywhere in the
// image. Replay must never panic, never return an error, and every
// surviving record must be an exact prefix match of what was written.
func TestFuzzSeededRecovery(t *testing.T) {
	recs := sampleRecords()
	clean := journalImage(t, recs)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		img := append([]byte(nil), clean...)
		// Truncate to a random length, then flip up to 3 random bytes.
		img = img[:rng.Intn(len(img)+1)]
		for f := rng.Intn(4); f > 0 && len(img) > 0; f-- {
			img[rng.Intn(len(img))] ^= byte(1 << rng.Intn(8))
		}
		got, _, err := ReplayBytes(img)
		if err != nil {
			t.Fatalf("trial %d: replay errored: %v", trial, err)
		}
		if len(got) > len(recs) {
			t.Fatalf("trial %d: %d records from a %d-record journal", trial, len(got), len(recs))
		}
		for i := range got {
			// A flipped byte that keeps the CRC valid is ~2^-32; treat any
			// non-prefix record as a hard failure.
			if got[i] != recs[i] {
				t.Fatalf("trial %d: record %d corrupted silently: %+v", trial, i, got[i])
			}
		}
		Recover(got) // must not panic on any surviving prefix
	}
}

func TestFileRoundTripAndMissing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nrm.journal")

	// Missing file = empty journal.
	recs, st, err := ReplayFile(path)
	if err != nil || len(recs) != 0 || st.DamagedTail {
		t.Fatalf("missing file: recs=%v st=%+v err=%v", recs, st, err)
	}

	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Appends() != len(sampleRecords()) {
		t.Fatalf("Appends() = %d", w.Appends())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Kind: KindCapDecision}); err == nil {
		t.Fatal("append after Close succeeded")
	}

	recs, st, err = ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(sampleRecords()) || st.DamagedTail {
		t.Fatalf("file replay: %d records, st=%+v", len(recs), st)
	}

	// Simulate a torn final write by chopping two bytes off the file.
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, img[:len(img)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, st, err = ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(sampleRecords())-1 || !st.DamagedTail {
		t.Fatalf("torn file replay: %d records, st=%+v", len(recs), st)
	}
}

func TestAppendRejectsKindlessRecord(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Append(Record{}); err == nil {
		t.Fatal("kindless record accepted")
	}
}
