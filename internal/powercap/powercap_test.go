package powercap

import (
	"errors"
	"strings"
	"testing"
	"time"

	"progresscap/internal/msr"
)

func newZone(t *testing.T) (*Zone, *msr.Device) {
	t.Helper()
	dev := msr.NewDevice(4, nil)
	return NewZone(dev, msr.DefaultUnits()), dev
}

func readUint(t *testing.T, z *Zone, file string) uint64 {
	t.Helper()
	s, err := z.ReadFile(0, file)
	if err != nil {
		t.Fatalf("ReadFile(%s): %v", file, err)
	}
	var v uint64
	for _, c := range strings.TrimSpace(s) {
		v = v*10 + uint64(c-'0')
	}
	return v
}

// TestPowerLimitFloorQuantization pins the kernel-style floor-to-unit
// behavior that distinguishes the sysfs backend from the raw-MSR path's
// round-to-nearest: 41.6 W floors to 41.5 W here but rounds to 41.625 W
// through msr.EncodePowerLimit. The two backends must therefore never
// share a result-cache key.
func TestPowerLimitFloorQuantization(t *testing.T) {
	z, dev := newZone(t)
	if _, err := z.WriteFile(0, FilePowerLimitUW, "41600000\n"); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := readUint(t, z, FilePowerLimitUW); got != 41_500_000 {
		t.Fatalf("power_limit_uw = %d, want 41500000 (floor)", got)
	}
	u := msr.DefaultUnits()
	reg := msr.EncodePowerLimit(msr.PowerLimit{Watts: 41.6}, u)
	if got := msr.DecodePowerLimit(reg, u).Watts; got != 41.625 {
		t.Fatalf("EncodePowerLimit rounds to %g, want 41.625", got)
	}
	_ = dev
}

// TestEnergyUJ checks the µJ scaling and the advertised wrap range.
func TestEnergyUJ(t *testing.T) {
	z, dev := newZone(t)
	dev.Poke(msr.PkgEnergyStatus, 1<<14) // exactly 1 J at EnergyBits=14
	if got := readUint(t, z, FileEnergyUJ); got != 1_000_000 {
		t.Fatalf("energy_uj = %d, want 1000000", got)
	}
	want := (uint64(1) << 32) * 1_000_000 >> 14
	if got := readUint(t, z, FileMaxEnergyRangeUJ); got != want {
		t.Fatalf("max_energy_range_uj = %d, want %d", got, want)
	}
	if z.MaxEnergyRangeUJ() != want {
		t.Fatalf("MaxEnergyRangeUJ() = %d, want %d", z.MaxEnergyRangeUJ(), want)
	}
}

// TestEnabledToggle checks the enable round-trip and that writes go
// through the whitelisted register path (the deadman's write sequence
// must advance).
func TestEnabledToggle(t *testing.T) {
	z, dev := newZone(t)
	seq0 := dev.WriteSeq(msr.PkgPowerLimit)
	if _, err := z.WriteFile(0, FileEnabled, "1\n"); err != nil {
		t.Fatalf("enable: %v", err)
	}
	if s, _ := z.ReadFile(0, FileEnabled); strings.TrimSpace(s) != "1" {
		t.Fatalf("enabled = %q, want 1", s)
	}
	if _, err := z.WriteFile(0, FileEnabled, "0\n"); err != nil {
		t.Fatalf("disable: %v", err)
	}
	if s, _ := z.ReadFile(0, FileEnabled); strings.TrimSpace(s) != "0" {
		t.Fatalf("enabled = %q, want 0", s)
	}
	if seq := dev.WriteSeq(msr.PkgPowerLimit); seq != seq0+2 {
		t.Fatalf("write seq advanced by %d, want 2", seq-seq0)
	}
	if _, err := z.WriteFile(0, FileEnabled, "maybe\n"); !errors.Is(err, ErrInval) {
		t.Fatalf("bogus enable: err = %v, want ErrInval", err)
	}
}

// TestTruncatedWrite checks that a FaultTruncate write latches a digit
// prefix, reports a short count with a nil error, and is only caught by
// reading the limit back.
func TestTruncatedWrite(t *testing.T) {
	z, _ := newZone(t)
	z.SetFaultHook(func(op FaultOp, file string, now time.Duration) FaultClass {
		if op == OpWrite && file == FilePowerLimitUW {
			return FaultTruncate
		}
		return FaultNone
	})
	n, err := z.WriteFile(0, FilePowerLimitUW, "42000000")
	if err != nil {
		t.Fatalf("truncated write errored: %v", err)
	}
	if n >= len("42000000") {
		t.Fatalf("truncated write reported full count %d", n)
	}
	z.SetFaultHook(nil)
	// "4200" µW floors to raw 0: the truncated store programmed a
	// zero-watt limit, invisible without read-back verification.
	if got := readUint(t, z, FilePowerLimitUW); got != 0 {
		t.Fatalf("latched limit = %d µW, want 0", got)
	}
}

// TestStaleEnergy checks that FaultStale serves the previous successful
// energy_uj snapshot.
func TestStaleEnergy(t *testing.T) {
	z, dev := newZone(t)
	dev.Poke(msr.PkgEnergyStatus, 1<<14)
	first := readUint(t, z, FileEnergyUJ)
	dev.Poke(msr.PkgEnergyStatus, 2<<14)
	z.SetFaultHook(func(op FaultOp, file string, now time.Duration) FaultClass {
		if op == OpRead && file == FileEnergyUJ {
			return FaultStale
		}
		return FaultNone
	})
	if got := readUint(t, z, FileEnergyUJ); got != first {
		t.Fatalf("stale read = %d, want previous value %d", got, first)
	}
	z.SetFaultHook(nil)
	if got := readUint(t, z, FileEnergyUJ); got != 2*first {
		t.Fatalf("fresh read = %d, want %d", got, 2*first)
	}
}

// TestErrorClasses checks the fault-class → errno mapping and the
// transient/permanent split the retry classifier keys on.
func TestErrorClasses(t *testing.T) {
	z, _ := newZone(t)
	cases := []struct {
		class     FaultClass
		want      *Errno
		temporary bool
	}{
		{FaultAgain, ErrAgain, true},
		{FaultEIO, ErrIO, true},
		{FaultPerm, ErrPerm, false},
		{FaultGone, ErrNoEnt, false},
	}
	for _, c := range cases {
		cls := c.class
		z.SetFaultHook(func(FaultOp, string, time.Duration) FaultClass { return cls })
		_, err := z.ReadFile(0, FileEnergyUJ)
		if !errors.Is(err, c.want) {
			t.Fatalf("class %d: read err = %v, want %v", c.class, err, c.want)
		}
		if _, werr := z.WriteFile(0, FilePowerLimitUW, "1000000"); !errors.Is(werr, c.want) {
			t.Fatalf("class %d: write err = %v, want %v", c.class, werr, c.want)
		}
		var tmp interface{ Temporary() bool }
		if !errors.As(err, &tmp) || tmp.Temporary() != c.temporary {
			t.Fatalf("class %d: Temporary() = %v, want %v", c.class, !c.temporary, c.temporary)
		}
	}
}

// TestReadOnlyAndMissingFiles checks EPERM on read-only stores and
// ENOENT on unknown names.
func TestReadOnlyAndMissingFiles(t *testing.T) {
	z, _ := newZone(t)
	for _, f := range []string{FileName, FileEnergyUJ, FileMaxEnergyRangeUJ} {
		if _, err := z.WriteFile(0, f, "1"); !errors.Is(err, ErrPerm) {
			t.Fatalf("write %s: err = %v, want ErrPerm", f, err)
		}
	}
	if _, err := z.ReadFile(0, "constraint_9_power_limit_uw"); !errors.Is(err, ErrNoEnt) {
		t.Fatalf("unknown read: err = %v, want ErrNoEnt", err)
	}
	if _, err := z.WriteFile(0, "constraint_9_power_limit_uw", "1"); !errors.Is(err, ErrNoEnt) {
		t.Fatalf("unknown write: err = %v, want ErrNoEnt", err)
	}
	if s, err := z.ReadFile(0, FileName); err != nil || strings.TrimSpace(s) != "package-0" {
		t.Fatalf("name = %q, %v", s, err)
	}
}

// TestTimeWindowRoundTrip checks the µs window file against the SDM
// Y/Z encoding.
func TestTimeWindowRoundTrip(t *testing.T) {
	z, _ := newZone(t)
	if _, err := z.WriteFile(0, FileTimeWindowUS, "10000\n"); err != nil {
		t.Fatalf("write window: %v", err)
	}
	got := readUint(t, z, FileTimeWindowUS)
	// 10 ms is not exactly representable in Y/Z units; accept ±25 %.
	if got < 7_500 || got > 12_500 {
		t.Fatalf("time_window_us = %d, want ≈10000", got)
	}
}

// TestBackendRoundTrip checks the actuation adapter end to end.
func TestBackendRoundTrip(t *testing.T) {
	z, dev := newZone(t)
	b := NewBackend(z)
	if b.Name() != "sysfs" {
		t.Fatalf("Name = %q", b.Name())
	}
	if err := b.WriteCapW(0, 50); err != nil {
		t.Fatalf("WriteCapW: %v", err)
	}
	w, on, err := b.ReadCapW(0)
	if err != nil || !on || w != 50 {
		t.Fatalf("ReadCapW = %g, %v, %v; want 50, true, nil", w, on, err)
	}
	if err := b.WriteCapW(0, 0); err != nil {
		t.Fatalf("WriteCapW(0): %v", err)
	}
	if _, on, _ := b.ReadCapW(0); on {
		t.Fatal("cap still enabled after release")
	}
	dev.Poke(msr.PkgEnergyStatus, 3<<14)
	raw, err := b.EnergyRaw(0)
	if err != nil || raw != 3_000_000 {
		t.Fatalf("EnergyRaw = %d, %v; want 3000000", raw, err)
	}
	if b.WrapModulus() != z.MaxEnergyRangeUJ() {
		t.Fatalf("WrapModulus = %d", b.WrapModulus())
	}
	if b.JoulesPerCount() != 1e-6 {
		t.Fatalf("JoulesPerCount = %g", b.JoulesPerCount())
	}
	if b.SampleCost() <= 0 {
		t.Fatalf("SampleCost = %v", b.SampleCost())
	}
}
