package powercap

// Backend adapts the sysfs zone to the actuation-backend shape the
// hardened rapl.Actuator drives (the interface is declared there; this
// satisfies it structurally, keeping the dependency pointing from rapl
// to nothing and from here to msr only).

import (
	"math"
	"strconv"
	"strings"
	"time"
)

// DefaultSampleCost is the modeled wall-clock cost of one energy_uj
// sample: a sysfs open/read/parse round-trip is roughly an order of
// magnitude more expensive than a raw MSR read, which is the
// monitoring-cost asymmetry the ext-backends experiment sweeps.
const DefaultSampleCost = 20 * time.Microsecond

// Backend actuates power caps through the sysfs zone.
type Backend struct {
	zone *Zone
}

// NewBackend returns a sysfs actuation backend over the zone.
func NewBackend(z *Zone) *Backend {
	if z == nil {
		panic("powercap: nil zone")
	}
	return &Backend{zone: z}
}

// Name identifies the backend in health journals and counters.
func (b *Backend) Name() string { return "sysfs" }

// Zone returns the underlying zone (for fault-hook installation).
func (b *Backend) Zone() *Zone { return b.zone }

// WriteCapW programs the PL1 limit in microwatts and enables the
// constraint; watts <= 0 disables capping instead, mirroring how
// real tooling releases a zone. A silently truncated limit write is
// NOT an error here — only the actuator's read-back verification
// catches it.
func (b *Backend) WriteCapW(now time.Duration, watts float64) error {
	if watts <= 0 {
		_, err := b.zone.WriteFile(now, FileEnabled, "0\n")
		return err
	}
	uw := uint64(math.Round(watts * 1e6))
	if _, err := b.zone.WriteFile(now, FilePowerLimitUW, strconv.FormatUint(uw, 10)+"\n"); err != nil {
		return err
	}
	_, err := b.zone.WriteFile(now, FileEnabled, "1\n")
	return err
}

// ReadCapW returns the currently programmed PL1 limit in watts and
// whether the constraint is enabled.
func (b *Backend) ReadCapW(now time.Duration) (float64, bool, error) {
	s, err := b.zone.ReadFile(now, FilePowerLimitUW)
	if err != nil {
		return 0, false, err
	}
	uw, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, false, ErrInval
	}
	es, err := b.zone.ReadFile(now, FileEnabled)
	if err != nil {
		return 0, false, err
	}
	return float64(uw) / 1e6, strings.TrimSpace(es) == "1", nil
}

// EnergyRaw returns the energy counter image in µJ counts, wrapping at
// WrapModulus.
func (b *Backend) EnergyRaw(now time.Duration) (uint64, error) {
	s, err := b.zone.ReadFile(now, FileEnergyUJ)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, ErrInval
	}
	return v, nil
}

// WrapModulus returns the µJ wrap range of energy_uj.
func (b *Backend) WrapModulus() uint64 { return b.zone.MaxEnergyRangeUJ() }

// JoulesPerCount returns the energy per raw count: energy_uj counts
// microjoules.
func (b *Backend) JoulesPerCount() float64 { return 1e-6 }

// SampleCost returns the modeled cost of one energy sample.
func (b *Backend) SampleCost() time.Duration { return DefaultSampleCost }
