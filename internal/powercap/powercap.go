// Package powercap emulates the Linux powercap sysfs interface
// (/sys/class/powercap/intel-rapl:0) over the same emulated MSR device
// the register-level path drives. Production power managers
// increasingly actuate RAPL through this tree instead of msr-safe: the
// kernel's intel_rapl driver exposes the package PL1 constraint as
// µW-granularity decimal files, the energy counter as a wrapping
// energy_uj value, and an enabled toggle — all with file-I/O failure
// modes raw register access does not have (EAGAIN under contention,
// silently truncated short writes, stale energy snapshots, permission
// flips from udev/tmpfiles races, whole-zone ENOENT across a driver
// rebind).
//
// The Zone is a faithful file-level façade: every read and write goes
// through the underlying msr.Device (writes through the whitelist and
// the write-sequence the deadman watches, so a cap programmed via
// sysfs re-arms the lease exactly like a register write), and the
// kernel's quantization is reproduced — power limits floor to the
// register unit where the raw-MSR path rounds to nearest, which is why
// the two backends are distinct cache keys upstream.
package powercap

import (
	"strconv"
	"strings"
	"sync"
	"time"

	"progresscap/internal/msr"
)

// Zone file names, mirroring the kernel's intel-rapl constraint-0
// (long-term / PL1) attribute set.
const (
	// FileName identifies the zone ("package-0"); read-only.
	FileName = "name"
	// FileEnabled is the zone's enable toggle ("0"/"1").
	FileEnabled = "enabled"
	// FilePowerLimitUW is the PL1 limit in microwatts, decimal.
	FilePowerLimitUW = "constraint_0_power_limit_uw"
	// FileTimeWindowUS is the PL1 averaging window in microseconds.
	FileTimeWindowUS = "constraint_0_time_window_us"
	// FileEnergyUJ is the wrapping energy counter in microjoules;
	// read-only.
	FileEnergyUJ = "energy_uj"
	// FileMaxEnergyRangeUJ is the wrap modulus of energy_uj; read-only.
	FileMaxEnergyRangeUJ = "max_energy_range_uj"
)

// Errno is a sysfs access error with the transient/permanent split the
// hardened actuator's retry classifier keys on. It implements the
// conventional Temporary() predicate.
type Errno struct {
	name      string
	temporary bool
}

func (e *Errno) Error() string { return "powercap: " + e.name }

// Temporary reports whether retrying the access can succeed without
// operator intervention.
func (e *Errno) Temporary() bool { return e.temporary }

// Sysfs access errors. ErrAgain and ErrIO are transient (retryable);
// ErrPerm, ErrNoEnt, and ErrInval are permanent for the current access.
var (
	ErrAgain = &Errno{name: "resource temporarily unavailable (EAGAIN)", temporary: true}
	ErrIO    = &Errno{name: "I/O error (EIO)", temporary: true}
	ErrPerm  = &Errno{name: "permission denied (EACCES)"}
	ErrNoEnt = &Errno{name: "no such file or directory (ENOENT)"}
	ErrInval = &Errno{name: "invalid argument (EINVAL)"}
)

// FaultOp distinguishes reads from writes for the fault hook.
type FaultOp int

// Fault hook operations.
const (
	OpRead FaultOp = iota
	OpWrite
)

// FaultClass is the fault a hook asks the zone to exhibit for one file
// access.
type FaultClass int

// Injectable access faults.
const (
	// FaultNone performs the access normally.
	FaultNone FaultClass = iota
	// FaultAgain fails the access with ErrAgain.
	FaultAgain
	// FaultEIO fails the access with ErrIO.
	FaultEIO
	// FaultTruncate latches only a prefix of the written digits (a short
	// write), silently programming a far smaller limit; the write
	// "succeeds" with a short byte count. Only meaningful for writes to
	// FilePowerLimitUW; otherwise behaves like FaultNone.
	FaultTruncate
	// FaultStale serves the previous successful read's value instead of
	// the current one. Only meaningful for reads of FileEnergyUJ.
	FaultStale
	// FaultPerm fails the access with ErrPerm (a permission flip).
	FaultPerm
	// FaultGone fails the access with ErrNoEnt (the zone's files have
	// transiently disappeared across a driver unbind/rebind).
	FaultGone
)

// FaultHook lets a fault-injection layer perturb individual file
// accesses. It must be deterministic for reproducible runs; now is the
// virtual time of the access, so window faults need no hook state.
type FaultHook func(op FaultOp, file string, now time.Duration) FaultClass

// Zone is the emulated powercap control-zone directory for one
// package. It is safe for concurrent use.
type Zone struct {
	mu    sync.Mutex
	dev   *msr.Device
	units msr.Units
	hook  FaultHook

	staleEnergy uint64
	staleSeen   bool

	reads, writes uint64
}

// NewZone returns a zone façade over the device. The units must match
// the device's RAPL unit register; they are passed in rather than read
// so zone construction never touches the device (and so never perturbs
// a fault-injection RNG stream).
func NewZone(dev *msr.Device, u msr.Units) *Zone {
	if dev == nil {
		panic("powercap: nil device")
	}
	return &Zone{dev: dev, units: u}
}

// SetFaultHook installs (or, with nil, removes) the access fault hook.
// Without a hook the zone behaves perfectly.
func (z *Zone) SetFaultHook(h FaultHook) {
	z.mu.Lock()
	z.hook = h
	z.mu.Unlock()
}

// Counts returns the number of file reads and writes attempted, for
// monitoring-overhead accounting.
func (z *Zone) Counts() (reads, writes uint64) {
	z.mu.Lock()
	defer z.mu.Unlock()
	return z.reads, z.writes
}

// MaxEnergyRangeUJ returns the wrap modulus of energy_uj: the µJ image
// of a full 32-bit counter revolution at the zone's energy unit.
func (z *Zone) MaxEnergyRangeUJ() uint64 {
	return (uint64(1) << 32) * 1_000_000 >> z.units.EnergyBits
}

// ReadFile returns the contents of a zone file (with the trailing
// newline sysfs emits) at the given virtual time.
func (z *Zone) ReadFile(now time.Duration, name string) (string, error) {
	z.mu.Lock()
	defer z.mu.Unlock()
	z.reads++
	class := FaultNone
	if z.hook != nil {
		class = z.hook(OpRead, name, now)
	}
	switch class {
	case FaultGone:
		return "", ErrNoEnt
	case FaultPerm:
		return "", ErrPerm
	case FaultAgain:
		return "", ErrAgain
	case FaultEIO:
		return "", ErrIO
	}
	switch name {
	case FileName:
		return "package-0\n", nil
	case FileMaxEnergyRangeUJ:
		return formatUint(z.MaxEnergyRangeUJ()), nil
	case FileEnabled:
		pl1, err := z.readPL1()
		if err != nil {
			return "", err
		}
		if pl1.Enabled {
			return "1\n", nil
		}
		return "0\n", nil
	case FilePowerLimitUW:
		reg, err := z.dev.Read(msr.PkgPowerLimit)
		if err != nil {
			return "", err
		}
		raw := reg & 0x7FFF
		return formatUint(raw * 1_000_000 >> z.units.PowerBits), nil
	case FileTimeWindowUS:
		pl1, err := z.readPL1()
		if err != nil {
			return "", err
		}
		return formatUint(uint64(pl1.WindowSeconds*1e6 + 0.5)), nil
	case FileEnergyUJ:
		raw, err := z.dev.Read(msr.PkgEnergyStatus)
		if err != nil {
			return "", err
		}
		uj := (raw & 0xFFFFFFFF) * 1_000_000 >> z.units.EnergyBits
		if class == FaultStale && z.staleSeen {
			return formatUint(z.staleEnergy), nil
		}
		z.staleEnergy = uj
		z.staleSeen = true
		return formatUint(uj), nil
	}
	return "", ErrNoEnt
}

// WriteFile stores data into a zone file at the given virtual time,
// returning the number of bytes accepted. A short count with a nil
// error is a silently truncated write — exactly how a faulting sysfs
// store manifests to callers that do not verify by reading back.
func (z *Zone) WriteFile(now time.Duration, name, data string) (int, error) {
	z.mu.Lock()
	defer z.mu.Unlock()
	z.writes++
	class := FaultNone
	if z.hook != nil {
		class = z.hook(OpWrite, name, now)
	}
	switch class {
	case FaultGone:
		return 0, ErrNoEnt
	case FaultPerm:
		return 0, ErrPerm
	case FaultAgain:
		return 0, ErrAgain
	case FaultEIO:
		return 0, ErrIO
	}
	switch name {
	case FileName, FileEnergyUJ, FileMaxEnergyRangeUJ:
		return 0, ErrPerm
	case FileEnabled:
		var on bool
		switch strings.TrimSpace(data) {
		case "0":
			on = false
		case "1":
			on = true
		default:
			return 0, ErrInval
		}
		pl1, err := z.readPL1()
		if err != nil {
			return 0, err
		}
		pl1.Enabled, pl1.Clamp = on, on
		if err := z.writePL1(pl1); err != nil {
			return 0, err
		}
		return len(data), nil
	case FilePowerLimitUW:
		digits := strings.TrimSpace(data)
		uw, err := strconv.ParseUint(digits, 10, 64)
		if err != nil {
			return 0, ErrInval
		}
		n := len(data)
		if class == FaultTruncate && len(digits) > 1 {
			keep := (len(digits) + 1) / 2
			uw, _ = strconv.ParseUint(digits[:keep], 10, 64)
			n = keep
		}
		// The kernel quantizes by integer division: floor to the register
		// power unit. The raw-MSR path rounds to nearest instead, which is
		// why the two backends must be distinct result-cache keys.
		const maxUW = uint64(1) << 50 // keeps the shift below from overflowing
		if uw > maxUW {
			uw = maxUW
		}
		raw := uw << z.units.PowerBits / 1_000_000
		if raw > 0x7FFF {
			raw = 0x7FFF
		}
		reg, err := z.dev.Read(msr.PkgPowerLimit)
		if err != nil {
			return 0, err
		}
		nv := reg&^uint64(0x7FFF) | raw
		if err := z.dev.Write(msr.PkgPowerLimit, nv); err != nil {
			return 0, err
		}
		return n, nil
	case FileTimeWindowUS:
		us, err := strconv.ParseUint(strings.TrimSpace(data), 10, 64)
		if err != nil {
			return 0, ErrInval
		}
		pl1, err := z.readPL1()
		if err != nil {
			return 0, err
		}
		pl1.WindowSeconds = float64(us) / 1e6
		if err := z.writePL1(pl1); err != nil {
			return 0, err
		}
		return len(data), nil
	}
	return 0, ErrNoEnt
}

// readPL1 decodes the PL1 window of the power-limit register.
// Callers hold z.mu; the device has its own lock.
func (z *Zone) readPL1() (msr.PowerLimit, error) {
	reg, err := z.dev.Read(msr.PkgPowerLimit)
	if err != nil {
		return msr.PowerLimit{}, err
	}
	return msr.DecodePowerLimit(reg&0xFFFFFFFF, z.units), nil
}

// writePL1 re-encodes the PL1 window, preserving the PL2 half.
func (z *Zone) writePL1(pl1 msr.PowerLimit) error {
	reg, err := z.dev.Read(msr.PkgPowerLimit)
	if err != nil {
		return err
	}
	nv := reg&^uint64(0xFFFFFFFF) | msr.EncodePowerLimit(pl1, z.units)
	return z.dev.Write(msr.PkgPowerLimit, nv)
}

func formatUint(v uint64) string {
	return strconv.FormatUint(v, 10) + "\n"
}
