// Checkpoint accessors for the powercap-sysfs zone façade. The zone's
// state is its stale-energy image and access accounting; the device and
// fault hook are wired by the restoring run's own construction path.

package powercap

// ZoneState is the mutable state of a Zone.
type ZoneState struct {
	StaleEnergy uint64
	StaleSeen   bool
	Reads       uint64
	Writes      uint64
}

// Snapshot captures the zone's state.
func (z *Zone) Snapshot() ZoneState {
	z.mu.Lock()
	defer z.mu.Unlock()
	return ZoneState{
		StaleEnergy: z.staleEnergy,
		StaleSeen:   z.staleSeen,
		Reads:       z.reads,
		Writes:      z.writes,
	}
}

// Restore pours a captured state back.
func (z *Zone) Restore(s ZoneState) {
	z.mu.Lock()
	defer z.mu.Unlock()
	z.staleEnergy = s.StaleEnergy
	z.staleSeen = s.StaleSeen
	z.reads = s.Reads
	z.writes = s.Writes
}
