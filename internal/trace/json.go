package trace

import "encoding/json"

// seriesJSON is the wire form of a Series. Points marshal through Go's
// default float encoding (shortest round-trip), so a decoded series is
// bit-identical to the one encoded — a requirement for the experiment
// disk cache, whose loaded results must produce the same signatures as
// freshly computed ones.
type seriesJSON struct {
	Name   string  `json:"name"`
	Unit   string  `json:"unit,omitempty"`
	Points []Point `json:"points,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (s *Series) MarshalJSON() ([]byte, error) {
	return json.Marshal(seriesJSON{Name: s.Name, Unit: s.Unit, Points: s.pts})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Series) UnmarshalJSON(b []byte) error {
	var sj seriesJSON
	if err := json.Unmarshal(b, &sj); err != nil {
		return err
	}
	s.Name, s.Unit, s.pts = sj.Name, sj.Unit, sj.Points
	return nil
}
