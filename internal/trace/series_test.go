package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesAddAndAccess(t *testing.T) {
	s := NewSeries("power", "W")
	s.Add(0, 100)
	s.Add(time.Second, 110)
	s.Add(2*time.Second, 120)
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if p := s.At(1); p.T != time.Second || p.V != 110 {
		t.Fatalf("At(1) = %+v", p)
	}
	vs := s.Values()
	if vs[0] != 100 || vs[2] != 120 {
		t.Fatalf("Values = %v", vs)
	}
	ts := s.Times()
	if ts[1] != 1 {
		t.Fatalf("Times = %v", ts)
	}
}

func TestSeriesOutOfOrderPanics(t *testing.T) {
	s := NewSeries("x", "")
	s.Add(time.Second, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order Add did not panic")
		}
	}()
	s.Add(0, 2)
}

func TestSeriesSameTimeOK(t *testing.T) {
	s := NewSeries("x", "")
	s.Add(time.Second, 1)
	s.Add(time.Second, 2) // equal timestamps are allowed
	if s.Len() != 2 {
		t.Fatal("same-time Add rejected")
	}
}

func TestSeriesValueAt(t *testing.T) {
	s := NewSeries("cap", "W")
	s.Add(time.Second, 200)
	s.Add(3*time.Second, 150)
	if _, ok := s.ValueAt(500 * time.Millisecond); ok {
		t.Fatal("ValueAt before first sample returned ok")
	}
	if v, ok := s.ValueAt(time.Second); !ok || v != 200 {
		t.Fatalf("ValueAt(1s) = %v,%v", v, ok)
	}
	if v, _ := s.ValueAt(2 * time.Second); v != 200 {
		t.Fatalf("ValueAt(2s) = %v, want 200 (step hold)", v)
	}
	if v, _ := s.ValueAt(10 * time.Second); v != 150 {
		t.Fatalf("ValueAt(10s) = %v, want 150", v)
	}
}

func TestSeriesSliceAndMean(t *testing.T) {
	s := NewSeries("x", "")
	for i := 0; i < 10; i++ {
		s.Add(time.Duration(i)*time.Second, float64(i))
	}
	pts := s.Slice(2*time.Second, 5*time.Second)
	if len(pts) != 3 || pts[0].V != 2 || pts[2].V != 4 {
		t.Fatalf("Slice = %v", pts)
	}
	m, ok := s.MeanBetween(2*time.Second, 5*time.Second)
	if !ok || m != 3 {
		t.Fatalf("MeanBetween = %v,%v", m, ok)
	}
	if _, ok := s.MeanBetween(100*time.Second, 200*time.Second); ok {
		t.Fatal("MeanBetween over empty window returned ok")
	}
}

func TestSeriesResample(t *testing.T) {
	s := NewSeries("x", "")
	s.Add(0, 10)
	s.Add(time.Second, 20)
	// gap at [2s,3s): should hold previous value
	s.Add(3*time.Second, 40)
	out := s.Resample(0, 4*time.Second, time.Second)
	want := []float64{10, 20, 20, 40}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Resample = %v, want %v", out, want)
		}
	}
}

func TestSeriesResampleBadStepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Resample step=0 did not panic")
		}
	}()
	NewSeries("x", "").Resample(0, time.Second, 0)
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("Sparkline(nil) != empty")
	}
	sp := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(sp)) != 4 {
		t.Fatalf("Sparkline length = %d", len([]rune(sp)))
	}
	if Sparkline([]float64{5, 5, 5}) != "▁▁▁" {
		t.Fatalf("constant Sparkline = %q", Sparkline([]float64{5, 5, 5}))
	}
	rs := []rune(Sparkline([]float64{0, 10}))
	if rs[0] != '▁' || rs[1] != '█' {
		t.Fatalf("extremes Sparkline = %q", string(rs))
	}
}

// Property: Resample output length matches ceil((to-from)/step) and every
// bucket value lies within [min, max] of the series (or 0 before data).
func TestResampleBoundsProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		s := NewSeries("p", "")
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			f := float64(v)
			s.Add(time.Duration(i)*100*time.Millisecond, f)
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		out := s.Resample(0, 3*time.Second, 250*time.Millisecond)
		if len(out) != 12 {
			return false
		}
		for _, v := range out {
			if v == 0 && len(raw) == 0 {
				continue
			}
			if len(raw) > 0 && (v < lo-1e-9 || v > hi+1e-9) {
				// buckets before any data hold 0, allowed when first sample later than bucket
				if v == 0 {
					continue
				}
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Table I", "App", "Value")
	tb.AddRow("LAMMPS", "1.00")
	tb.AddRowf("STREAM", 0.37)
	out := tb.Render()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "LAMMPS") || !strings.Contains(out, "0.37") {
		t.Fatalf("Render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("Render produced %d lines:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRow("x")
	if !strings.Contains(tb.Render(), "x") {
		t.Fatal("short row lost")
	}
}

func TestTableLongRowPanics(t *testing.T) {
	tb := NewTable("", "A")
	defer func() {
		if recover() == nil {
			t.Fatal("over-wide row did not panic")
		}
	}()
	tb.AddRow("x", "y")
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "name", "desc")
	tb.AddRow("a", `has "quotes", and comma`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"has ""quotes"", and comma"`) {
		t.Fatalf("CSV quoting wrong:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "name,desc\n") {
		t.Fatalf("CSV header wrong:\n%s", csv)
	}
}

func TestFormatted(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{3, "3"}, {3.5, "3.50"}, {0.0039, "0.0039"}, {1080, "1080"},
	}
	for _, c := range cases {
		if got := Formatted(c.in); got != c.want {
			t.Errorf("Formatted(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
