// Checkpoint accessors for Series: the engine's checkpoint layer deep-
// copies every trace so a pooled snapshot can seed many forked runs
// concurrently while the donor keeps appending to its own live series.

package trace

// Snapshot returns a deep copy of the series' points. Mutating the
// returned slice never affects the live series, and vice versa.
func (s *Series) Snapshot() []Point {
	if len(s.pts) == 0 {
		return nil
	}
	return append([]Point(nil), s.pts...)
}

// Restore replaces the series' points with a deep copy of pts, which
// must be in non-decreasing time order (they came from Snapshot, which
// guarantees it).
func (s *Series) Restore(pts []Point) {
	s.pts = append(s.pts[:0:0], pts...)
}
