package trace

import (
	"strings"
	"testing"
	"time"
)

func TestPlotSVGBasicStructure(t *testing.T) {
	p := NewPlot("Fig X: demo", "time (s)", "progress/s")
	if err := p.Line("measured", []float64{0, 1, 2, 3}, []float64{10, 12, 11, 13}); err != nil {
		t.Fatal(err)
	}
	svg := p.SVG()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "Fig X: demo", "time (s)", "progress/s", "measured",
	} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q:\n%s", want, svg[:200])
		}
	}
}

func TestPlotKinds(t *testing.T) {
	p := NewPlot("t", "x", "y")
	if err := p.Steps("cap", []float64{0, 10, 20}, []float64{170, 90, 170}); err != nil {
		t.Fatal(err)
	}
	if err := p.Scatter("measured", []float64{1, 2}, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	svg := p.SVG()
	if !strings.Contains(svg, "circle") {
		t.Fatal("scatter produced no circles")
	}
	// The step series produces more polyline points than raw samples.
	if strings.Count(svg, "polyline") != 1 {
		t.Fatalf("polyline count = %d", strings.Count(svg, "polyline"))
	}
}

func TestPlotValidation(t *testing.T) {
	p := NewPlot("t", "x", "y")
	if err := p.Line("bad", []float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := p.Line("empty", nil, nil); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestPlotEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty plot did not panic")
		}
	}()
	NewPlot("t", "x", "y").SVG()
}

func TestPlotDeterministic(t *testing.T) {
	mk := func() string {
		p := NewPlot("t", "x", "y")
		_ = p.Line("a", []float64{0, 1, 2}, []float64{5, 6, 7})
		_ = p.Line("b", []float64{0, 1, 2}, []float64{7, 6, 5})
		return p.SVG()
	}
	if mk() != mk() {
		t.Fatal("SVG output not deterministic")
	}
}

func TestPlotEscapesMarkup(t *testing.T) {
	p := NewPlot(`<Title & "quotes">`, "x", "y")
	_ = p.Line("s", []float64{0}, []float64{1})
	svg := p.SVG()
	if strings.Contains(svg, "<Title") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(svg, "&lt;Title &amp;") {
		t.Fatal("escaped title missing")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 100, 5)
	if len(ticks) < 4 || len(ticks) > 8 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("ticks not increasing: %v", ticks)
		}
	}
	// Degenerate range must not loop forever or return nothing.
	if got := niceTicks(5, 5, 5); len(got) == 0 {
		t.Fatal("degenerate range produced no ticks")
	}
	// Inverted input is normalized.
	if got := niceTicks(10, 0, 5); len(got) == 0 {
		t.Fatal("inverted range produced no ticks")
	}
}

func TestFormatTick(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"}, {2e6, "2M"}, {50000, "50k"}, {3.5, "3.5"}, {3, "3"}, {0.004, "0.004"},
	}
	for _, c := range cases {
		if got := formatTick(c.in); got != c.want {
			t.Errorf("formatTick(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSeriesPlot(t *testing.T) {
	a := NewSeries("rate", "it/s")
	a.Add(0, 10)
	a.Add(time.Second, 12)
	b := NewSeries("power", "W")
	b.Add(0, 170)
	b.Add(time.Second, 90)
	p, err := SeriesPlot("combined", "t", "v", a, b)
	if err != nil {
		t.Fatal(err)
	}
	svg := p.SVG()
	if !strings.Contains(svg, "rate") || !strings.Contains(svg, "power") {
		t.Fatal("series names missing from legend")
	}
	if _, err := SeriesPlot("dup", "t", "v", a, a); err == nil {
		t.Fatal("duplicate series accepted")
	}
}
