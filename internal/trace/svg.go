package trace

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders line/step/scatter charts as standalone SVG documents —
// the graphical form of the paper's figures, built with the standard
// library only. Output is deterministic for a given input.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height default to 720×420.
	Width, Height int

	series []plotSeries
}

type plotKind int

const (
	kindLine plotKind = iota
	kindStep
	kindScatter
)

type plotSeries struct {
	name string
	xs   []float64
	ys   []float64
	kind plotKind
}

// palette holds the series colors (color-blind-safe Okabe-Ito subset).
var palette = []string{"#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9"}

// NewPlot returns an empty plot.
func NewPlot(title, xLabel, yLabel string) *Plot {
	return &Plot{Title: title, XLabel: xLabel, YLabel: yLabel}
}

func (p *Plot) add(name string, xs, ys []float64, kind plotKind) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("trace: series %q has %d xs vs %d ys", name, len(xs), len(ys))
	}
	if len(xs) == 0 {
		return fmt.Errorf("trace: series %q is empty", name)
	}
	p.series = append(p.series, plotSeries{
		name: name,
		xs:   append([]float64(nil), xs...),
		ys:   append([]float64(nil), ys...),
		kind: kind,
	})
	return nil
}

// Line adds a polyline series.
func (p *Plot) Line(name string, xs, ys []float64) error {
	return p.add(name, xs, ys, kindLine)
}

// Steps adds a step series (value holds until the next x — the natural
// rendering for power caps).
func (p *Plot) Steps(name string, xs, ys []float64) error {
	return p.add(name, xs, ys, kindStep)
}

// Scatter adds a point series (the natural rendering for measured
// samples).
func (p *Plot) Scatter(name string, xs, ys []float64) error {
	return p.add(name, xs, ys, kindScatter)
}

// niceTicks returns ~n human-friendly tick positions covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	if hi == lo {
		hi = lo + 1
	}
	rawStep := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	var step float64
	switch {
	case rawStep/mag < 1.5:
		step = mag
	case rawStep/mag < 3.5:
		step = 2 * mag
	case rawStep/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	start := math.Ceil(lo/step) * step
	var ticks []float64
	for v := start; v <= hi+step/1e6; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

func formatTick(v float64) string {
	a := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case a >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case a >= 1e4:
		return fmt.Sprintf("%.3gk", v/1e3)
	case a >= 1:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// bounds returns the data extent across all series, padded.
func (p *Plot) bounds() (x0, x1, y0, y1 float64) {
	x0, y0 = math.Inf(1), math.Inf(1)
	x1, y1 = math.Inf(-1), math.Inf(-1)
	for _, s := range p.series {
		for i := range s.xs {
			x0 = math.Min(x0, s.xs[i])
			x1 = math.Max(x1, s.xs[i])
			y0 = math.Min(y0, s.ys[i])
			y1 = math.Max(y1, s.ys[i])
		}
	}
	if y0 > 0 && y0 < y1/3 {
		y0 = 0 // anchor near-zero ranges at zero
	}
	if y0 == y1 {
		y1 = y0 + 1
	}
	pad := (y1 - y0) * 0.08
	return x0, x1, y0 - 0, y1 + pad
}

// SVG renders the plot. It panics if no series were added, since an
// empty figure always indicates a harness bug.
func (p *Plot) SVG() string {
	if len(p.series) == 0 {
		panic("trace: plot has no series")
	}
	w, h := p.Width, p.Height
	if w == 0 {
		w = 720
	}
	if h == 0 {
		h = 420
	}
	const (
		mLeft, mRight, mTop, mBottom = 70, 20, 44, 52
	)
	iw := float64(w - mLeft - mRight)
	ih := float64(h - mTop - mBottom)
	x0, x1, y0, y1 := p.bounds()
	if x1 == x0 {
		x1 = x0 + 1
	}
	px := func(x float64) float64 { return float64(mLeft) + (x-x0)/(x1-x0)*iw }
	py := func(y float64) float64 { return float64(mTop) + ih - (y-y0)/(y1-y0)*ih }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		mLeft, escape(p.Title))

	// Gridlines + ticks.
	for _, t := range niceTicks(y0, y1, 5) {
		y := py(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#e0e0e0"/>`+"\n", mLeft, y, w-mRight, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" font-family="sans-serif" font-size="11" fill="#444">%s</text>`+"\n",
			mLeft-6, y+4, formatTick(t))
	}
	for _, t := range niceTicks(x0, x1, 7) {
		x := px(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#e0e0e0"/>`+"\n", x, mTop, x, h-mBottom)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" font-family="sans-serif" font-size="11" fill="#444">%s</text>`+"\n",
			x, h-mBottom+16, formatTick(t))
	}
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n", mLeft, h-mBottom, w-mRight, h-mBottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n", mLeft, mTop, mLeft, h-mBottom)
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle" font-family="sans-serif" font-size="12">%s</text>`+"\n",
		mLeft+int(iw/2), h-10, escape(p.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" text-anchor="middle" font-family="sans-serif" font-size="12" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		mTop+int(ih/2), mTop+int(ih/2), escape(p.YLabel))

	// Series.
	for i, s := range p.series {
		color := palette[i%len(palette)]
		switch s.kind {
		case kindScatter:
			for j := range s.xs {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s"/>`+"\n", px(s.xs[j]), py(s.ys[j]), color)
			}
		default:
			var pts []string
			for j := range s.xs {
				if s.kind == kindStep && j > 0 {
					pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.xs[j]), py(s.ys[j-1])))
				}
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.xs[j]), py(s.ys[j])))
			}
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
				strings.Join(pts, " "), color)
		}
	}

	// Legend (top-right, one row per series).
	lx := w - mRight - 170
	ly := mTop + 8
	for i, s := range p.series {
		color := palette[i%len(palette)]
		y := ly + i*17
		if s.kind == kindScatter {
			fmt.Fprintf(&b, `<circle cx="%d" cy="%d" r="3.5" fill="%s"/>`+"\n", lx+9, y-3, color)
		} else {
			fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1.8"/>`+"\n", lx, y-3, lx+18, y-3, color)
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n", lx+24, y, escape(s.name))
	}

	b.WriteString("</svg>\n")
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// SeriesPlot is a convenience: one Plot from trace Series, aligned on
// their own time axes.
func SeriesPlot(title, xLabel, yLabel string, series ...*Series) (*Plot, error) {
	p := NewPlot(title, xLabel, yLabel)
	names := map[string]bool{}
	for _, s := range series {
		if names[s.Name] {
			return nil, fmt.Errorf("trace: duplicate series %q in plot", s.Name)
		}
		names[s.Name] = true
		if err := p.Line(s.Name, s.Times(), s.Values()); err != nil {
			return nil, err
		}
	}
	return p, nil
}
