// Package trace records and renders time series produced by the
// simulation: power draw, CPU frequency, power caps, and online
// performance. The experiment harness uses it to regenerate the paper's
// figures as aligned text series and CSV, plus compact ASCII sparklines
// for at-a-glance shape checks in terminal output.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Point is a single (time, value) sample.
type Point struct {
	T time.Duration
	V float64
}

// Series is an append-only time series with a name and a unit label.
type Series struct {
	Name string
	Unit string
	pts  []Point
}

// NewSeries returns an empty series.
func NewSeries(name, unit string) *Series {
	return &Series{Name: name, Unit: unit}
}

// Add appends a sample. Samples must be appended in non-decreasing time
// order; out-of-order appends panic because they indicate an engine bug.
func (s *Series) Add(t time.Duration, v float64) {
	if n := len(s.pts); n > 0 && t < s.pts[n-1].T {
		panic(fmt.Sprintf("trace: out-of-order sample on %q: %v after %v", s.Name, t, s.pts[n-1].T))
	}
	s.pts = append(s.pts, Point{T: t, V: v})
}

// Reserve grows the series' capacity to hold at least n total samples,
// so a caller that knows the run length (samples per window × windows)
// can pre-size the backing array instead of growing it through repeated
// append doublings on the hot path.
func (s *Series) Reserve(n int) {
	if n <= cap(s.pts) {
		return
	}
	pts := make([]Point, len(s.pts), n)
	copy(pts, s.pts)
	s.pts = pts
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.pts) }

// At returns the i-th sample.
func (s *Series) At(i int) Point { return s.pts[i] }

// Points returns the underlying samples. The slice must not be mutated.
func (s *Series) Points() []Point { return s.pts }

// Values returns just the sample values in order.
func (s *Series) Values() []float64 {
	vs := make([]float64, len(s.pts))
	for i, p := range s.pts {
		vs[i] = p.V
	}
	return vs
}

// Times returns the sample times in seconds.
func (s *Series) Times() []float64 {
	ts := make([]float64, len(s.pts))
	for i, p := range s.pts {
		ts[i] = p.T.Seconds()
	}
	return ts
}

// ValueAt returns the most recent value at or before t (step
// interpolation). The boolean is false when t precedes the first sample.
func (s *Series) ValueAt(t time.Duration) (float64, bool) {
	i := sort.Search(len(s.pts), func(i int) bool { return s.pts[i].T > t })
	if i == 0 {
		return 0, false
	}
	return s.pts[i-1].V, true
}

// Slice returns the samples in [from, to).
func (s *Series) Slice(from, to time.Duration) []Point {
	lo := sort.Search(len(s.pts), func(i int) bool { return s.pts[i].T >= from })
	hi := sort.Search(len(s.pts), func(i int) bool { return s.pts[i].T >= to })
	return s.pts[lo:hi]
}

// MeanBetween returns the mean of values sampled in [from, to), and false
// if the window holds no samples.
func (s *Series) MeanBetween(from, to time.Duration) (float64, bool) {
	pts := s.Slice(from, to)
	if len(pts) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, p := range pts {
		sum += p.V
	}
	return sum / float64(len(pts)), true
}

// Resample buckets the series into fixed windows of width step starting at
// from, averaging the samples in each bucket. Empty buckets carry the
// previous bucket's value (or 0 before any data). The result has
// ceil((to-from)/step) buckets.
func (s *Series) Resample(from, to time.Duration, step time.Duration) []float64 {
	if step <= 0 {
		panic("trace: Resample with non-positive step")
	}
	n := int((to - from + step - 1) / step)
	if n < 0 {
		n = 0
	}
	out := make([]float64, n)
	prev := 0.0
	for i := 0; i < n; i++ {
		lo := from + time.Duration(i)*step
		hi := lo + step
		if m, ok := s.MeanBetween(lo, hi); ok {
			prev = m
		}
		out[i] = prev
	}
	return out
}

// Sparkline renders values as a compact unicode bar chart, useful for
// eyeballing figure shapes in terminal output.
func Sparkline(vs []float64) string {
	if len(vs) == 0 {
		return ""
	}
	bars := []rune("▁▂▃▄▅▆▇█")
	lo, hi := vs[0], vs[0]
	for _, v := range vs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vs {
		idx := 0
		if hi > lo {
			idx = int(math.Round((v - lo) / (hi - lo) * float64(len(bars)-1)))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(bars) {
			idx = len(bars) - 1
		}
		b.WriteRune(bars[idx])
	}
	return b.String()
}
