package trace

import (
	"fmt"
	"strings"
)

// Table renders aligned text tables in the style of the paper's tables.
// Rows are added as formatted cells; Render pads columns to the widest
// cell.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row. Short rows are padded with empty cells; long rows
// panic since they indicate a harness bug.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.headers) {
		panic(fmt.Sprintf("trace: row has %d cells, table has %d columns", len(cells), len(t.headers)))
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of values formatted with %v semantics, using
// Formatted for floats.
func (t *Table) AddRowf(cells ...interface{}) {
	strs := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			strs[i] = Formatted(v)
		case string:
			strs[i] = v
		default:
			strs[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(strs...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render returns the aligned text form of the table.
func (t *Table) Render() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the table as comma-separated values with a header line.
// Cells containing commas or quotes are quoted per RFC 4180.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Formatted renders a float with sensible precision for table output:
// integers print without a fraction, small values keep four significant
// digits, larger ones two decimals.
func Formatted(v float64) string {
	switch {
	case v == float64(int64(v)) && v > -1e15 && v < 1e15:
		return fmt.Sprintf("%d", int64(v))
	case v != 0 && (v < 0.01 && v > -0.01):
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
