// Package progresscap is a library for studying the impact of dynamic
// power capping on HPC application progress, reproducing Ramesh et al.,
// "Understanding the Impact of Dynamic Power Capping on Application
// Progress" (IPDPS 2019) as a self-contained simulation.
//
// The library bundles:
//
//   - a simulated 24-core Skylake-class node with DVFS, duty-cycle
//     modulation, an emulated RAPL controller behind an MSR interface,
//     and PAPI-style hardware counters;
//   - workload models of the paper's applications (LAMMPS, AMG, QMCPACK,
//     OpenMC, STREAM, CANDLE, and the Listing-1 imbalance sample),
//     calibrated to the paper's β and MPO characterization;
//   - online progress instrumentation: per-iteration reports over a
//     lossy pub/sub transport, aggregated into per-second online
//     performance;
//   - the paper's dynamic capping schemes (linear decrease, step
//     function, jagged edge) applied by a 1 Hz power-policy daemon; and
//   - the paper's analytical model (Eqs. 1–7) of progress under a cap.
//
// # Quick start
//
//	report, err := progresscap.Run(progresscap.RunConfig{
//		App:     "LAMMPS",
//		Seconds: 30,
//		Scheme:  progresscap.StepCap(0, 90, 10*time.Second, 10*time.Second),
//	})
//
// Run executes the workload on the simulated node under the scheme and
// returns per-second online performance together with power, frequency,
// and cap traces. Characterize measures β and an uncapped baseline;
// FitModel turns that into the paper's predictive model.
package progresscap

import (
	"fmt"
	"sync"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/engine"
	"progresscap/internal/model"
	"progresscap/internal/policy"
	"progresscap/internal/progress"
	"progresscap/internal/stats"
	"progresscap/internal/workload"
)

// Scheme selects a dynamic power-capping policy for a run. The zero
// value means uncapped. Construct schemes with NoCap, ConstantCap,
// LinearCap, StepCap, or JaggedCap.
type Scheme struct {
	impl policy.Scheme
}

// NoCap returns the uncapped scheme.
func NoCap() Scheme { return Scheme{impl: policy.NoCap{}} }

// ConstantCap holds the package cap at watts for the whole run.
func ConstantCap(watts float64) Scheme {
	return Scheme{impl: policy.Constant{Watts: watts}}
}

// LinearCap starts uncapped for delay, then decreases the cap from
// startW by rateWPerSec until minW (the paper's linearly decreasing
// scheme).
func LinearCap(delay time.Duration, startW, minW, rateWPerSec float64) Scheme {
	return Scheme{impl: policy.Linear{Delay: delay, StartW: startW, MinW: minW, RateWPerSec: rateWPerSec}}
}

// StepCap alternates between highW (0 = uncapped) for highFor and lowW
// for lowFor (the paper's step-function scheme).
func StepCap(highW, lowW float64, highFor, lowFor time.Duration) Scheme {
	return Scheme{impl: policy.Step{HighW: highW, LowW: lowW, HighFor: highFor, LowFor: lowFor}}
}

// JaggedCap decreases linearly from startW to lowW over fallFor, then
// snaps back to uncapped for uncappedFor (the paper's jagged-edge
// scheme).
func JaggedCap(startW, lowW float64, fallFor, uncappedFor time.Duration) Scheme {
	return Scheme{impl: policy.Jagged{StartW: startW, LowW: lowW, FallFor: fallFor, UncappedFor: uncappedFor}}
}

// Name returns the scheme's name ("uncapped" for the zero value).
func (s Scheme) Name() string {
	if s.impl == nil {
		return policy.NoCap{}.Name()
	}
	return s.impl.Name()
}

// RunConfig describes one simulated run.
type RunConfig struct {
	// App is a registry name: "LAMMPS", "AMG", "QMCPACK", "OpenMC",
	// "STREAM", or "CANDLE" (see Applications).
	App string
	// Seconds sizes the workload to roughly this much virtual time
	// uncapped; capping extends it. Default 20.
	Seconds float64
	// Scheme is the dynamic capping policy; zero value = uncapped.
	Scheme Scheme
	// PinMHz, when nonzero, disables RAPL and pins the package at this
	// frequency (the plain-DVFS power-limiting technique). Mutually
	// exclusive with Scheme.
	PinMHz float64
	// Seed makes the run reproducible. Default 1.
	Seed uint64
}

// Series is a time series of one per-second observable.
type Series struct {
	Times  []float64 // seconds since run start
	Values []float64
	Unit   string
}

// Report is the outcome of a run.
type Report struct {
	App       string
	Metric    string  // the application's online-performance metric
	Elapsed   float64 // virtual seconds
	Completed bool

	// Progress is the per-second online performance (metric units/s).
	Progress Series
	// PowerW, FreqMHz, and CapW are per-second node telemetry; CapW is
	// empty for uncapped runs (0 values mean "no cap in force").
	PowerW  Series
	FreqMHz Series
	CapW    Series

	MeanRate    float64 // mean per-second online performance
	EnergyJ     float64 // package-domain energy
	DRAMEnergyJ float64 // DRAM-domain energy
	MIPS        float64
	MPO         float64
	// Behavior classifies the progress series: "steady", "fluctuating",
	// or "phased" (the paper's Fig 1 taxonomy).
	Behavior string
	// Imbalance is the mean barrier-spin share of rank busy time
	// (0 = perfectly balanced).
	Imbalance float64
}

func toSeries(tr interface {
	Times() []float64
	Values() []float64
}, unit string) Series {
	return Series{Times: tr.Times(), Values: tr.Values(), Unit: unit}
}

// Run executes one workload on the simulated node.
func Run(cfg RunConfig) (*Report, error) {
	if cfg.Seconds == 0 {
		cfg.Seconds = 20
	}
	if cfg.Seconds < 2 {
		return nil, fmt.Errorf("progresscap: Seconds = %v too short (need >= 2)", cfg.Seconds)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.PinMHz != 0 && cfg.Scheme.impl != nil {
		return nil, fmt.Errorf("progresscap: PinMHz and Scheme are mutually exclusive")
	}
	info, err := apps.Lookup(cfg.App)
	if err != nil {
		return nil, err
	}
	if !info.Runnable() {
		return nil, fmt.Errorf("progresscap: %s is a Category %s application with no reliable online metric; it cannot be run", info.Name, info.Category)
	}
	w := info.Build(cfg.Seconds)
	return runWorkload(w, cfg)
}

func runWorkload(w *workload.Workload, cfg RunConfig) (*Report, error) {
	ecfg := engine.DefaultConfig()
	ecfg.Seed = cfg.Seed
	e, err := engine.New(ecfg, w)
	if err != nil {
		return nil, err
	}
	if cfg.PinMHz != 0 {
		e.SetManualDVFS(cfg.PinMHz)
	} else if cfg.Scheme.impl != nil {
		if err := e.SetScheme(cfg.Scheme.impl); err != nil {
			return nil, err
		}
	}
	// Capping can stretch the run well past its uncapped sizing.
	res, err := e.Run(time.Duration(cfg.Seconds*6) * time.Second)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		App:         cfg.App,
		Metric:      w.Metric,
		Elapsed:     res.Elapsed.Seconds(),
		Completed:   res.Completed,
		Progress:    toSeries(res.RateTrace, w.Metric),
		PowerW:      toSeries(res.PowerTrace, "W"),
		FreqMHz:     toSeries(res.FreqTrace, "MHz"),
		MeanRate:    res.MeanRate(),
		EnergyJ:     res.EnergyJ,
		DRAMEnergyJ: res.DRAMEnergyJ,
		MIPS:        res.Counters.MIPS(),
		MPO:         res.Counters.MPO(),
		Behavior:    progress.Classify(res.Rates()).String(),
		Imbalance:   res.Jobs[0].Imbalance(),
	}
	if res.CapTrace != nil {
		rep.CapW = toSeries(res.CapTrace, "W")
	}
	return rep, nil
}

// Characterization is the §IV-A measurement of one application.
type Characterization struct {
	App  string
	Beta float64 // compute-boundedness
	MPO  float64 // L3 misses per instruction
	// BaselineRate and BaselinePkgW are the uncapped progress rate and
	// package power (the model's r(P_coremax) inputs).
	BaselineRate float64
	BaselinePkgW float64
}

// Characterize measures β (execution time at 3300 vs 1600 MHz), MPO, and
// the uncapped baseline for an application.
func Characterize(app string, seconds float64, seed uint64) (Characterization, error) {
	return CharacterizeParallel(app, seconds, seed, 1)
}

// CharacterizeParallel is Characterize with the two pinned measurement
// runs overlapped when parallel > 1. Each run gets its own freshly built
// workload instance and the same seed, so the result is identical at any
// parallelism; only wall time changes.
func CharacterizeParallel(app string, seconds float64, seed uint64, parallel int) (Characterization, error) {
	if seconds == 0 {
		seconds = 20
	}
	if seed == 0 {
		seed = 1
	}
	info, err := apps.Lookup(app)
	if err != nil {
		return Characterization{}, err
	}
	if !info.Runnable() {
		return Characterization{}, fmt.Errorf("progresscap: cannot characterize Category %s application %s", info.Category, info.Name)
	}

	var (
		fast, slow       *engine.Result
		fastErr, slowErr error
	)
	runFast := func() { fast, fastErr = pinRun(info.Build(seconds), 3300, seed, seconds*4) }
	runSlow := func() { slow, slowErr = pinRun(info.Build(seconds), 1600, seed, seconds*8) }
	if parallel > 1 {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			runSlow()
		}()
		runFast()
		wg.Wait()
	} else {
		runFast()
		runSlow()
	}
	if fastErr != nil {
		return Characterization{}, fastErr
	}
	if slowErr != nil {
		return Characterization{}, slowErr
	}
	if !fast.Completed || !slow.Completed {
		return Characterization{}, fmt.Errorf("progresscap: characterization runs did not complete")
	}
	c := Characterization{
		App:  app,
		Beta: model.BetaFromTimes(fast.Elapsed.Seconds(), slow.Elapsed.Seconds(), 3300, 1600),
		MPO:  fast.Counters.MPO(),
	}
	rates := fast.Rates()
	if len(rates) > 2 {
		rates = rates[1 : len(rates)-1]
	}
	c.BaselineRate = stats.Mean(rates)
	power := fast.PowerTrace.Values()
	if len(power) > 2 {
		power = power[1 : len(power)-1]
	}
	c.BaselinePkgW = stats.Mean(power)
	return c, nil
}

func pinRun(w *workload.Workload, mhz float64, seed uint64, maxSeconds float64) (*engine.Result, error) {
	ecfg := engine.DefaultConfig()
	ecfg.Seed = seed
	e, err := engine.New(ecfg, w)
	if err != nil {
		return nil, err
	}
	e.SetManualDVFS(mhz)
	return e.Run(time.Duration(maxSeconds * float64(time.Second)))
}

// Model is the paper's analytical model (Eqs. 1–7) fitted to one
// application.
type Model struct {
	p model.Params
}

// FitModel builds the model from a characterization, using the paper's
// estimates: α = 2 and P_coremax = β × uncapped package power.
func FitModel(c Characterization) (Model, error) {
	p, err := model.FromBaseline(c.Beta, c.BaselineRate, c.BaselinePkgW)
	if err != nil {
		return Model{}, err
	}
	return Model{p: p}, nil
}

// Beta returns the fitted compute-boundedness.
func (m Model) Beta() float64 { return m.p.Beta }

// BaselineRate returns r(P_coremax).
func (m Model) BaselineRate() float64 { return m.p.RMax }

// PredictProgress returns the expected online performance under a
// package power cap (Eqs. 5 + 4).
func (m Model) PredictProgress(pkgCapW float64) float64 {
	return m.p.PredictProgress(pkgCapW)
}

// PredictDelta returns the expected drop in online performance when the
// package cap is applied from the uncapped state (Eqs. 5 + 7).
func (m Model) PredictDelta(pkgCapW float64) float64 {
	return m.p.PredictDelta(pkgCapW)
}

// CapForProgress returns the package cap expected to sustain the target
// online performance — the paper's "decide on the exact power budget
// given an expectation of online performance".
func (m Model) CapForProgress(targetRate float64) (float64, error) {
	return m.p.PackageCapForProgress(targetRate)
}

// AppInfo describes one application from the paper's study set.
type AppInfo struct {
	Name        string
	Description string
	Category    string // "1", "2", "3" (or "1/2" for CANDLE)
	Metric      string
	Resource    string // limiting system resource
	Runnable    bool   // has a workload model (Categories 1 and 2)
}

// Applications lists the paper's application set (Tables II and V).
func Applications() []AppInfo {
	var out []AppInfo
	for _, info := range apps.Registry() {
		cat := info.Category.String()
		if info.Name == "CANDLE" {
			cat = "1/2"
		}
		out = append(out, AppInfo{
			Name:        info.Name,
			Description: info.Description,
			Category:    cat,
			Metric:      info.Metric,
			Resource:    info.Resource,
			Runnable:    info.Runnable(),
		})
	}
	return out
}
