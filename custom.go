package progresscap

// Custom application models: downstream users study their own codes by
// describing phases the way §IV-B instruments real applications —
// iteration period, compute-boundedness, counter rates — without
// touching the internal workload machinery.

import (
	"fmt"
	"time"

	"progresscap/internal/simtime"
	"progresscap/internal/workload"
)

// CustomPhase describes one phase of a custom application.
type CustomPhase struct {
	// Name identifies the phase in progress reports.
	Name string
	// Iterations is the fixed iteration count of the phase.
	Iterations int
	// Period is the iteration duration at the node's maximum frequency
	// (uncapped, full bandwidth).
	Period time.Duration
	// Beta is the phase's compute-boundedness in (0, 1]: the fraction of
	// Period spent executing rather than stalled on memory.
	Beta float64
	// ProgressPerIter is the metric units one iteration contributes
	// (default 1).
	ProgressPerIter float64
	// IPC is instructions per cycle over the compute part (default 1.5).
	IPC float64
	// MPO is L3 misses per instruction (default 1e-3).
	MPO float64
	// BWShare is each rank's memory-bandwidth demand while stalled, in
	// [0, 1] (default 1/Ranks, i.e. the team can just saturate the
	// memory subsystem when fully stalled).
	BWShare float64
	// Jitter is the relative iteration-cost variation shared by all
	// ranks, in [0, 1) (default 0).
	Jitter float64
	// RankImbalance adds an independent per-rank cost variation,
	// in [0, 1) (default 0) — it converts directly into barrier spin.
	RankImbalance float64
}

// CustomApp is a user-defined application model.
type CustomApp struct {
	Name   string
	Metric string
	// Ranks is the on-node parallelism (default 24, one per core).
	Ranks  int
	Phases []CustomPhase
}

// build converts the description into the internal workload model.
func (a CustomApp) build() (*workload.Workload, error) {
	if a.Name == "" {
		return nil, fmt.Errorf("progresscap: custom app needs a Name")
	}
	metric := a.Metric
	if metric == "" {
		metric = "iterations/s"
	}
	ranks := a.Ranks
	if ranks == 0 {
		ranks = 24
	}
	if ranks < 1 {
		return nil, fmt.Errorf("progresscap: custom app %s: Ranks = %d", a.Name, a.Ranks)
	}
	if len(a.Phases) == 0 {
		return nil, fmt.Errorf("progresscap: custom app %s has no phases", a.Name)
	}
	w := &workload.Workload{Name: a.Name, Metric: metric, Ranks: ranks}
	for i, p := range a.Phases {
		if p.Iterations <= 0 {
			return nil, fmt.Errorf("progresscap: %s phase %d: Iterations = %d", a.Name, i, p.Iterations)
		}
		if p.Period <= 0 {
			return nil, fmt.Errorf("progresscap: %s phase %d: Period = %v", a.Name, i, p.Period)
		}
		if p.Period < 5*time.Millisecond {
			return nil, fmt.Errorf("progresscap: %s phase %d: Period %v below the 5 ms simulation floor", a.Name, i, p.Period)
		}
		if p.Beta <= 0 || p.Beta > 1 {
			return nil, fmt.Errorf("progresscap: %s phase %d: Beta = %v outside (0,1]", a.Name, i, p.Beta)
		}
		if p.Jitter < 0 || p.Jitter >= 1 || p.RankImbalance < 0 || p.RankImbalance >= 1 {
			return nil, fmt.Errorf("progresscap: %s phase %d: jitter settings out of range", a.Name, i)
		}
		if p.BWShare < 0 || p.BWShare > 1 {
			return nil, fmt.Errorf("progresscap: %s phase %d: BWShare = %v", a.Name, i, p.BWShare)
		}

		name := p.Name
		if name == "" {
			name = fmt.Sprintf("phase%d", i)
		}
		progressPer := p.ProgressPerIter
		if progressPer == 0 {
			progressPer = 1
		}
		ipc := p.IPC
		if ipc == 0 {
			ipc = 1.5
		}
		mpo := p.MPO
		if mpo == 0 {
			mpo = 1e-3
		}
		bwShare := p.BWShare
		if bwShare == 0 {
			bwShare = 1 / float64(ranks)
		}
		durSec := p.Period.Seconds()
		beta := p.Beta
		jitAmp := p.Jitter
		rankAmp := p.RankImbalance
		shared := sharedJitterFor(jitAmp)
		w.Phases = append(w.Phases, workload.Phase{
			Name:            name,
			Iterations:      p.Iterations,
			ProgressPerIter: progressPer,
			Gen: func(rank, iter int, rng *simtime.RNG) workload.Segment {
				d := durSec * shared(rank, iter, rng)
				if rankAmp > 0 {
					d *= rng.Jitter(rankAmp)
				}
				ct := d * beta
				cycles := ct * 3.3e9
				inst := cycles * ipc
				return workload.Segment{
					ComputeCycles: cycles,
					MemSeconds:    d * (1 - beta),
					Instructions:  inst,
					L3Misses:      inst * mpo,
					BWShare:       bwShare,
					WorkUnits:     progressPer / float64(ranks),
				}
			},
		})
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// sharedJitterFor mirrors the internal apps' shared per-iteration jitter:
// one multiplicative draw per iteration, reused by every rank.
func sharedJitterFor(amp float64) func(rank, iter int, rng *simtime.RNG) float64 {
	cur := -1
	val := 1.0
	return func(rank, iter int, rng *simtime.RNG) float64 {
		if amp == 0 {
			return 1
		}
		if iter != cur || rank == 0 {
			cur = iter
			val = rng.Jitter(amp)
		}
		return val
	}
}

// RunCustom runs a user-defined application model under the same node
// and policy machinery as the built-in applications.
func RunCustom(app CustomApp, cfg RunConfig) (*Report, error) {
	if cfg.Seconds == 0 {
		cfg.Seconds = 20
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.PinMHz != 0 && cfg.Scheme.impl != nil {
		return nil, fmt.Errorf("progresscap: PinMHz and Scheme are mutually exclusive")
	}
	w, err := app.build()
	if err != nil {
		return nil, err
	}
	cfg.App = app.Name
	return runWorkload(w, cfg)
}

// CharacterizeCustom measures β, MPO, and the uncapped baseline for a
// custom application model (the §IV-A procedure).
func CharacterizeCustom(app CustomApp, seed uint64) (Characterization, error) {
	if seed == 0 {
		seed = 1
	}
	w, err := app.build()
	if err != nil {
		return Characterization{}, err
	}
	ideal := w.IdealDuration(3.3e9, 1, seed).Seconds()
	fast, err := pinRun(w, 3300, seed, ideal*3+5)
	if err != nil {
		return Characterization{}, err
	}
	slow, err := pinRun(w, 1600, seed, ideal*8+5)
	if err != nil {
		return Characterization{}, err
	}
	if !fast.Completed || !slow.Completed {
		return Characterization{}, fmt.Errorf("progresscap: custom characterization runs did not complete")
	}
	c := Characterization{
		App:  app.Name,
		Beta: betaFromTimes(fast.Elapsed.Seconds(), slow.Elapsed.Seconds()),
		MPO:  fast.Counters.MPO(),
	}
	rates := fast.Rates()
	if len(rates) > 2 {
		rates = rates[1 : len(rates)-1]
	}
	c.BaselineRate = meanOf(rates)
	power := fast.PowerTrace.Values()
	if len(power) > 2 {
		power = power[1 : len(power)-1]
	}
	c.BaselinePkgW = meanOf(power)
	return c, nil
}

func betaFromTimes(tFast, tSlow float64) float64 {
	return (tSlow/tFast - 1) / (3300.0/1600.0 - 1)
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
