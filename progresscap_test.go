package progresscap

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestRunLAMMPSUncapped(t *testing.T) {
	rep, err := Run(RunConfig{App: "LAMMPS", Seconds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("run did not complete")
	}
	if rep.Metric != "atom timesteps/s" {
		t.Fatalf("Metric = %q", rep.Metric)
	}
	if rep.MeanRate < 700000 || rep.MeanRate > 900000 {
		t.Fatalf("MeanRate = %v", rep.MeanRate)
	}
	if rep.Behavior != "steady" {
		t.Fatalf("Behavior = %q", rep.Behavior)
	}
	if len(rep.Progress.Values) == 0 || len(rep.PowerW.Values) == 0 || len(rep.FreqMHz.Values) == 0 {
		t.Fatal("missing series")
	}
	if len(rep.CapW.Values) != 0 {
		t.Fatal("uncapped run has a cap series")
	}
	if rep.EnergyJ <= 0 || rep.MIPS <= 0 || rep.MPO <= 0 {
		t.Fatalf("scalars: E=%v MIPS=%v MPO=%v", rep.EnergyJ, rep.MIPS, rep.MPO)
	}
}

func TestRunWithStepCap(t *testing.T) {
	rep, err := Run(RunConfig{
		App:     "LAMMPS",
		Seconds: 24,
		Scheme:  StepCap(0, 90, 8*time.Second, 8*time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.CapW.Values) == 0 {
		t.Fatal("capped run missing cap series")
	}
	// Progress must vary with the step.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range rep.Progress.Values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > 0.8*hi {
		t.Fatalf("progress did not follow the step cap: min %v, max %v", lo, hi)
	}
}

func TestRunPinnedDVFS(t *testing.T) {
	rep, err := Run(RunConfig{App: "STREAM", Seconds: 8, PinMHz: 1600})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.FreqMHz.Values {
		if f != 1600 {
			t.Fatalf("frequency %v, want 1600", f)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunConfig{App: "nosuch"}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := Run(RunConfig{App: "HACC"}); err == nil {
		t.Fatal("Category 3 app accepted")
	}
	if _, err := Run(RunConfig{App: "LAMMPS", Seconds: 1}); err == nil {
		t.Fatal("too-short run accepted")
	}
	if _, err := Run(RunConfig{App: "LAMMPS", PinMHz: 2000, Scheme: ConstantCap(100)}); err == nil {
		t.Fatal("PinMHz + Scheme accepted")
	}
}

func TestSchemeNames(t *testing.T) {
	if NoCap().Name() != "uncapped" || (Scheme{}).Name() != "uncapped" {
		t.Fatal("uncapped names wrong")
	}
	if !strings.Contains(ConstantCap(90).Name(), "constant") {
		t.Fatal("constant name wrong")
	}
	if LinearCap(0, 100, 50, 5).Name() != "linear-decrease" {
		t.Fatal("linear name wrong")
	}
	if JaggedCap(100, 50, time.Second, time.Second).Name() != "jagged-edge" {
		t.Fatal("jagged name wrong")
	}
}

func TestCharacterizeAndFitModel(t *testing.T) {
	c, err := Characterize("STREAM", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Beta-0.37) > 0.04 {
		t.Fatalf("STREAM β = %v, want ~0.37", c.Beta)
	}
	if c.BaselineRate < 14 || c.BaselineRate > 18 {
		t.Fatalf("baseline rate = %v", c.BaselineRate)
	}
	if c.BaselinePkgW < 120 || c.BaselinePkgW > 220 {
		t.Fatalf("baseline power = %v", c.BaselinePkgW)
	}

	m, err := FitModel(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Beta() != c.Beta || m.BaselineRate() != c.BaselineRate {
		t.Fatal("model not fitted from characterization")
	}
	// Predictions behave sanely.
	if m.PredictProgress(1000) != c.BaselineRate {
		t.Fatal("huge cap should not bind")
	}
	p100 := m.PredictProgress(100)
	if p100 >= c.BaselineRate || p100 <= 0 {
		t.Fatalf("PredictProgress(100) = %v", p100)
	}
	if d := m.PredictDelta(100); math.Abs(d-(c.BaselineRate-p100)) > 1e-9 {
		t.Fatalf("PredictDelta inconsistent: %v", d)
	}
	capW, err := m.CapForProgress(p100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(capW-100) > 1 {
		t.Fatalf("CapForProgress inverse = %v, want ~100", capW)
	}
}

func TestCharacterizeValidation(t *testing.T) {
	if _, err := Characterize("URBAN", 8, 1); err == nil {
		t.Fatal("Category 3 characterization accepted")
	}
	if _, err := Characterize("bogus", 8, 1); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestApplicationsList(t *testing.T) {
	list := Applications()
	if len(list) != 9 {
		t.Fatalf("Applications() returned %d entries", len(list))
	}
	byName := map[string]AppInfo{}
	for _, a := range list {
		byName[a.Name] = a
	}
	if !byName["LAMMPS"].Runnable || byName["HACC"].Runnable {
		t.Fatal("runnability flags wrong")
	}
	if byName["CANDLE"].Category != "1/2" {
		t.Fatalf("CANDLE category = %q", byName["CANDLE"].Category)
	}
	if byName["AMG"].Metric == "" || byName["STREAM"].Resource == "" {
		t.Fatal("metadata incomplete")
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	run := func() *Report {
		rep, err := Run(RunConfig{App: "AMG", Seconds: 8, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Elapsed != b.Elapsed || a.MeanRate != b.MeanRate || a.EnergyJ != b.EnergyJ {
		t.Fatal("same seed produced different reports")
	}
}

func TestQMCPACKPhasedBehavior(t *testing.T) {
	rep, err := Run(RunConfig{App: "QMCPACK", Seconds: 30})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Behavior != "phased" {
		t.Fatalf("QMCPACK behavior = %q, want phased", rep.Behavior)
	}
}
