package progresscap

import (
	"math"
	"strings"
	"testing"
)

func TestCharacterizationJSONRoundTrip(t *testing.T) {
	in := Characterization{App: "STREAM", Beta: 0.37, MPO: 50.9e-3, BaselineRate: 16, BaselinePkgW: 185}
	data, err := in.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"app": "STREAM"`) {
		t.Fatalf("JSON missing app field:\n%s", data)
	}
	out, err := ParseCharacterization(data)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestParseCharacterizationRejectsGarbage(t *testing.T) {
	cases := []string{
		"not json",
		`{"version": 99, "app": "x", "beta": 0.5, "baseline_rate": 1, "baseline_pkg_w": 100}`,
		`{"version": 1, "app": "x", "beta": 2.0, "baseline_rate": 1, "baseline_pkg_w": 100}`,
		`{"version": 1, "app": "x", "beta": 0.5, "baseline_rate": 0, "baseline_pkg_w": 100}`,
		`{"version": 1, "app": "x", "beta": 0.5, "baseline_rate": 1, "baseline_pkg_w": 100, "mpo": -1}`,
	}
	for i, c := range cases {
		if _, err := ParseCharacterization([]byte(c)); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}

func TestFitModelWithAlpha(t *testing.T) {
	c := Characterization{App: "LAMMPS", Beta: 1.0, BaselineRate: 800000, BaselinePkgW: 177}
	// Synthesize rates from a known α=2.5 model.
	truthModel, err := FitModel(c)
	if err != nil {
		t.Fatal(err)
	}
	truth := truthModel.p.WithAlpha(2.5)
	caps := []float64{160, 120, 90, 70}
	rates := make([]float64, len(caps))
	for i, w := range caps {
		rates[i] = truth.PredictProgress(w)
	}
	m, err := FitModelWithAlpha(c, caps, rates)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Alpha()-2.5) > 0.051 {
		t.Fatalf("fitted α = %v, want ~2.5", m.Alpha())
	}
	if _, err := FitModelWithAlpha(c, caps, rates[:2]); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestDefaultModelAlpha(t *testing.T) {
	c := Characterization{App: "x", Beta: 0.5, BaselineRate: 10, BaselinePkgW: 100}
	m, err := FitModel(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Alpha() != 2 {
		t.Fatalf("default α = %v, want 2", m.Alpha())
	}
}
