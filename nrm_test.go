package progresscap

import (
	"testing"
)

func TestRunNRMBudgetSchedule(t *testing.T) {
	rep, err := RunNRM(NRMConfig{
		App:     "LAMMPS",
		Seconds: 30,
		Beta:    1.0,
		Schedule: []BudgetChange{
			{AtSeconds: 5, Watts: 120},
			{AtSeconds: 18, Watts: 90},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("run incomplete")
	}
	if rep.BaselineRate < 700000 || rep.BaselineRate > 900000 {
		t.Fatalf("baseline = %v", rep.BaselineRate)
	}
	// Decision log reflects the schedule: uncapped, then RAPL at 120,
	// then RAPL at 90.
	saw120, saw90 := false, false
	for _, d := range rep.Decisions {
		if d.Knob == "rapl" && d.BudgetW == 120 {
			saw120 = true
		}
		if d.Knob == "rapl" && d.BudgetW == 90 {
			saw90 = true
		}
	}
	if !saw120 || !saw90 {
		t.Fatalf("schedule not reflected: 120=%v 90=%v decisions=%+v", saw120, saw90, rep.Decisions)
	}
	// Power respects the final budget once settled.
	vals := rep.PowerW.Values
	for i := 22; i < len(vals)-1; i++ {
		if vals[i] > 90*1.06 {
			t.Fatalf("window %d: power %v above the 90 W budget", i, vals[i])
		}
	}
}

func TestRunNRMTargetMode(t *testing.T) {
	rep, err := RunNRM(NRMConfig{
		App:     "LAMMPS",
		Seconds: 25,
		Beta:    1.0,
		Schedule: []BudgetChange{
			{AtSeconds: 5, TargetRate: 550000},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Achieved progress within 30% of the target once settled.
	vals := rep.Progress.Values
	if len(vals) < 12 {
		t.Fatalf("windows = %d", len(vals))
	}
	var sum float64
	n := 0
	for _, v := range vals[8:] {
		if v > 0 {
			sum += v
			n++
		}
	}
	got := sum / float64(n)
	if got < 550000*0.7 || got > 550000*1.3 {
		t.Fatalf("achieved %v, target 550000", got)
	}
}

func TestRunNRMValidation(t *testing.T) {
	if _, err := RunNRM(NRMConfig{App: "nosuch"}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := RunNRM(NRMConfig{App: "URBAN"}); err == nil {
		t.Fatal("Category 3 app accepted")
	}
	if _, err := RunNRM(NRMConfig{App: "LAMMPS", Beta: 5}); err == nil {
		t.Fatal("invalid beta accepted")
	}
}
