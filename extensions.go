package progresscap

// Public API for the two extensions the paper's discussion calls for:
// weighted multi-component progress for Category 3 applications (§VI-3)
// and job-level power management above the node (§II's Argo hierarchy).

import (
	"fmt"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/cluster"
	"progresscap/internal/composite"
	"progresscap/internal/engine"
)

// ComponentReport describes one component stream of a composite run.
type ComponentReport struct {
	Name     string
	Metric   string
	Baseline float64 // uncapped rate used for normalization
	Progress Series  // raw per-second rate in the component's own units
}

// CompositeReport is the outcome of RunURBAN: per-component progress plus
// the weighted, baseline-normalized composite metric (1.0 = every
// component at its uncapped rate).
type CompositeReport struct {
	Elapsed    float64
	Completed  bool
	Components []ComponentReport
	Composite  Series
	PowerW     Series
	CapW       Series
	EnergyJ    float64
}

// RunURBAN runs the paper's Category 3 example — Nek5000 coupled with
// EnergyPlus on one node at different timescales — and monitors it with
// the weighted multi-component progress metric (Nek5000 weighted 2:1).
// A calibration pass measures per-component baselines first.
func RunURBAN(seconds float64, scheme Scheme, seed uint64) (*CompositeReport, error) {
	if seconds == 0 {
		seconds = 30
	}
	if seconds < 5 {
		return nil, fmt.Errorf("progresscap: URBAN needs Seconds >= 5 (EnergyPlus steps take ~0.6 s)")
	}
	if seed == 0 {
		seed = 1
	}
	runOnce := func(s Scheme, dur float64) (*engine.Result, error) {
		nek, eplus := apps.URBANComponents(dur)
		cfg := engine.DefaultConfig()
		cfg.Seed = seed
		e, err := engine.NewMulti(cfg, nek, eplus)
		if err != nil {
			return nil, err
		}
		if s.impl != nil {
			if err := e.SetScheme(s.impl); err != nil {
				return nil, err
			}
		}
		return e.Run(time.Duration(dur*6) * time.Second)
	}

	calib, err := runOnce(Scheme{}, seconds)
	if err != nil {
		return nil, err
	}
	base := composite.BaselinesFrom(calib)
	metric, err := composite.NewMetric(
		composite.Component{Name: "nek5000", Weight: 2, Baseline: base["nek5000"]},
		composite.Component{Name: "energyplus", Weight: 1, Baseline: base["energyplus"]},
	)
	if err != nil {
		return nil, err
	}

	res, err := runOnce(scheme, seconds)
	if err != nil {
		return nil, err
	}
	comp, err := metric.Series(res)
	if err != nil {
		return nil, err
	}

	rep := &CompositeReport{
		Elapsed:   res.Elapsed.Seconds(),
		Completed: res.Completed,
		Composite: toSeries(comp, "normalized"),
		PowerW:    toSeries(res.PowerTrace, "W"),
		EnergyJ:   res.EnergyJ,
	}
	if res.CapTrace != nil {
		rep.CapW = toSeries(res.CapTrace, "W")
	}
	for _, j := range res.Jobs {
		rep.Components = append(rep.Components, ComponentReport{
			Name:     j.Workload,
			Metric:   j.Metric,
			Baseline: base[j.Workload],
			Progress: toSeries(j.RateTrace, j.Metric),
		})
	}
	return rep, nil
}

// NodeSpec describes one compute node of a cluster run.
type NodeSpec struct {
	Name string
	// App is a runnable registry name (see Applications).
	App string
	// PowerScale multiplies the node's dynamic core power — >1 models
	// less efficient silicon (node variability). 0 means 1.
	PowerScale float64
	Seed       uint64
}

// ClusterConfig describes a job-level power-management run.
type ClusterConfig struct {
	Nodes []NodeSpec
	// Policy is "equal-split" (default), "progress-aware", or
	// "throughput".
	Policy string
	// BudgetW is the job's power budget. If BudgetEndW is nonzero the
	// budget decays linearly from BudgetW to BudgetEndW over
	// BudgetDecay (the §II shrinking-budget scenario).
	BudgetW     float64
	BudgetEndW  float64
	BudgetDecay time.Duration
	// Seconds sizes each node's workload; the job runs to completion or
	// 6× this bound.
	Seconds float64
}

// ClusterReport is the outcome of RunCluster.
type ClusterReport struct {
	Elapsed   float64
	Completed bool
	// MinProgress / MeanProgress are per-epoch normalized job progress
	// (minimum and mean across nodes).
	MinProgress  Series
	MeanProgress Series
	BudgetW      Series
	// NodeCaps maps node name to the caps the manager programmed.
	NodeCaps     map[string]Series
	TotalEnergyJ float64
	// MeanMinProgress is the headline policy-comparison number.
	MeanMinProgress float64
}

// RunCluster distributes a job power budget across simulated nodes using
// online progress feedback — the Argo-style policy layer above the node.
func RunCluster(cfg ClusterConfig) (*ClusterReport, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("progresscap: cluster needs at least one node")
	}
	if cfg.BudgetW <= 0 {
		return nil, fmt.Errorf("progresscap: cluster needs a positive BudgetW")
	}
	if cfg.Seconds == 0 {
		cfg.Seconds = 30
	}
	var pol cluster.Policy
	switch cfg.Policy {
	case "", "equal-split":
		pol = cluster.EqualSplit{}
	case "progress-aware":
		pol = cluster.ProgressAware{Gain: 3}
	case "throughput":
		pol = cluster.Throughput{}
	default:
		return nil, fmt.Errorf("progresscap: unknown cluster policy %q", cfg.Policy)
	}
	budget := cluster.ConstantBudget(cfg.BudgetW)
	if cfg.BudgetEndW > 0 {
		decay := cfg.BudgetDecay
		if decay == 0 {
			decay = time.Duration(cfg.Seconds) * time.Second
		}
		budget = cluster.DecayingBudget(cfg.BudgetW, cfg.BudgetEndW, decay)
	}

	var nodes []*cluster.Node
	for i, spec := range cfg.Nodes {
		info, err := apps.Lookup(spec.App)
		if err != nil {
			return nil, err
		}
		if !info.Runnable() {
			return nil, fmt.Errorf("progresscap: node %q: %s has no workload model", spec.Name, spec.App)
		}
		ecfg := engine.DefaultConfig()
		ecfg.Seed = spec.Seed
		if ecfg.Seed == 0 {
			ecfg.Seed = uint64(i + 1)
		}
		if spec.PowerScale != 0 {
			ecfg.Power.CoreDynMaxW *= spec.PowerScale
		}
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("node%d", i)
		}
		e, err := engine.New(ecfg, info.Build(cfg.Seconds))
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, cluster.NewNode(name, e))
	}

	m, err := cluster.NewManager(pol, budget, nodes...)
	if err != nil {
		return nil, err
	}
	res, err := m.Run(time.Duration(cfg.Seconds*6) * time.Second)
	if err != nil {
		return nil, err
	}
	rep := &ClusterReport{
		Elapsed:         res.Elapsed.Seconds(),
		Completed:       res.Completed,
		MinProgress:     toSeries(res.MinProgress, "normalized"),
		MeanProgress:    toSeries(res.MeanProgress, "normalized"),
		BudgetW:         toSeries(res.BudgetTrace, "W"),
		NodeCaps:        map[string]Series{},
		TotalEnergyJ:    res.TotalEnergyJ,
		MeanMinProgress: res.MeanMinProgress(),
	}
	for _, n := range res.Nodes {
		rep.NodeCaps[n.Name()] = toSeries(n.CapTrace(), "W")
	}
	return rep, nil
}
