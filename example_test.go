package progresscap_test

import (
	"fmt"
	"time"

	"progresscap"
)

// ExampleRun demonstrates the basic workflow: run an application under a
// dynamic power cap and inspect its online performance.
func ExampleRun() {
	report, err := progresscap.Run(progresscap.RunConfig{
		App:     "LAMMPS",
		Seconds: 10,
		Scheme:  progresscap.StepCap(0, 90, 4*time.Second, 4*time.Second),
		Seed:    1,
	})
	if err != nil {
		panic(err)
	}
	lo, hi := report.Progress.Values[0], report.Progress.Values[0]
	for _, v := range report.Progress.Values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	fmt.Println("metric:", report.Metric)
	fmt.Println("completed:", report.Completed)
	fmt.Println("progress follows the cap:", lo < 0.8*hi)
	// Output:
	// metric: atom timesteps/s
	// completed: true
	// progress follows the cap: true
}

// ExampleApplications lists the paper's application set.
func ExampleApplications() {
	for _, a := range progresscap.Applications() {
		if a.Category == "3" {
			fmt.Printf("%s: %s (Category 3)\n", a.Name, a.Metric)
		}
	}
	// Output:
	// URBAN: N/A (Category 3)
	// Nek5000: N/A (Category 3)
	// HACC: N/A (Category 3)
}

// ExampleModel_CapForProgress shows the model answering the paper's
// budgeting question: what cap sustains a target online performance?
func ExampleModel_CapForProgress() {
	c := progresscap.Characterization{
		App:          "STREAM",
		Beta:         0.37,
		BaselineRate: 16,
		BaselinePkgW: 185,
	}
	m, err := progresscap.FitModel(c)
	if err != nil {
		panic(err)
	}
	capW, err := m.CapForProgress(12) // sustain 12 iterations/s
	if err != nil {
		panic(err)
	}
	fmt.Printf("budget %.0f W for 12 it/s\n", capW)
	// Output:
	// budget 51 W for 12 it/s
}

// ExampleScheme shows the available dynamic capping schemes.
func ExampleScheme() {
	fmt.Println(progresscap.NoCap().Name())
	fmt.Println(progresscap.LinearCap(4*time.Second, 170, 80, 5).Name())
	fmt.Println(progresscap.StepCap(0, 90, 10*time.Second, 10*time.Second).Name())
	fmt.Println(progresscap.JaggedCap(170, 80, 8*time.Second, 4*time.Second).Name())
	// Output:
	// uncapped
	// linear-decrease
	// step-function
	// jagged-edge
}
