// Urban demonstrates the paper's future-work extension for Category 3
// applications (§VI-3): the URBAN workload couples Nek5000 (CFD, fast
// nonuniform timesteps) with EnergyPlus (building energy, slow steps) at
// timescales orders of magnitude apart, so no single online metric is
// reliable. Monitoring the components separately and combining them into
// a weighted, baseline-normalized composite yields a job-level progress
// metric that visibly follows a dynamic power cap.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"
	"time"

	"progresscap"
)

func main() {
	log.SetFlags(0)

	rep, err := progresscap.RunURBAN(36,
		progresscap.StepCap(0, 85, 10*time.Second, 10*time.Second), 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("URBAN composite progress (Nek5000 weighted 2 : EnergyPlus 1):")
	for _, c := range rep.Components {
		fmt.Printf("  component %-11s baseline %6.2f %s\n", c.Name, c.Baseline, c.Metric)
	}
	fmt.Println()
	fmt.Printf("%6s  %8s  %10s\n", "t(s)", "cap(W)", "composite")
	for i, ts := range rep.Composite.Times {
		capStr := "none"
		if i < len(rep.CapW.Values) && rep.CapW.Values[i] > 0 {
			capStr = fmt.Sprintf("%.0f", rep.CapW.Values[i])
		}
		v := rep.Composite.Values[i]
		bar := strings.Repeat("#", int(math.Round(v*40)))
		fmt.Printf("%6.0f  %8s  %10.2f %s\n", ts, capStr, v, bar)
	}
	fmt.Println("\n1.0 means every component at its uncapped rate; the dips line up")
	fmt.Println("with the capped halves of the step schedule.")
}
