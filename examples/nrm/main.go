// NRM plays out the paper's motivation scenario (§II): the node resource
// manager hosts a low-priority memory-bound job when "a large,
// high-priority job begins executing elsewhere on the system, and the
// power budget for the currently executing low-priority job is reduced".
//
// The NRM calibrates an uncapped baseline, fits the paper's progress
// model, and on each budget cut chooses between RAPL capping and plain
// DVFS by *measuring* both with the online progress metric — the
// comparison the analytical model cannot make, because it does not see
// RAPL's non-DVFS enforcement (Fig 5).
package main

import (
	"fmt"
	"log"

	"progresscap/internal/apps"
	"progresscap/internal/engine"
	"progresscap/internal/nrm"
)

func main() {
	log.SetFlags(0)

	// Offline DVFS calibration table for STREAM (frequency → measured
	// package power, as produced by `powerpolicy -scheme none` at pinned
	// frequencies or examples/modelfit).
	dvfsTable := []nrm.DVFSPoint{
		{MHz: 2800, PowerW: 156},
		{MHz: 2300, PowerW: 132},
		{MHz: 1800, PowerW: 113},
		{MHz: 1300, PowerW: 99},
		{MHz: 1000, PowerW: 86},
	}

	eng, err := engine.New(engine.DefaultConfig(), apps.STREAM(apps.DefaultRanks, 16*60))
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := nrm.New(nrm.Config{Beta: 0.37, DVFSTable: dvfsTable}, eng)
	if err != nil {
		log.Fatal(err)
	}

	// Budget schedule: uncapped calibration, then 140 W, then the
	// high-priority job arrives and the budget drops to 105 W.
	schedule := map[int]float64{5: 140, 25: 105}

	fmt.Printf("%6s  %8s  %6s  %10s  %12s\n", "epoch", "budget", "knob", "setting", "progress/s")
	for epoch := 0; epoch < 45; epoch++ {
		if b, ok := schedule[epoch]; ok {
			fmt.Printf("---- budget changed to %.0f W ----\n", b)
			mgr.SetBudget(b)
		}
		done, err := mgr.Step()
		if err != nil {
			log.Fatal(err)
		}
		decs := mgr.Decisions()
		d := decs[len(decs)-1]
		rate := 0.0
		if tr := mgr.RateTrace(); tr.Len() > 0 {
			rate = tr.At(tr.Len() - 1).V
		}
		fmt.Printf("%6d  %8.0f  %6s  %10.0f  %12.2f\n",
			epoch, d.BudgetW, d.Knob, d.Setting, rate)
		if done {
			break
		}
	}
	res, err := eng.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline %.2f it/s; run used %.0f J over %.0f s\n",
		mgr.BaselineRate(), res.EnergyJ, res.Elapsed.Seconds())
	fmt.Println("The NRM tried RAPL and DVFS at each budget and committed to the knob")
	fmt.Println("that preserved more *measured* online progress.")
}
