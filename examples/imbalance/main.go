// Imbalance reproduces the paper's Listing 1 on the repository's real
// message-passing runtime (internal/mpi): 24 ranks execute five
// iterations of do_equal_work / do_unequal_work — "work" is sleeping, one
// work unit per microsecond slept — separated by barriers. Rank 0 prints
// the paper's "PROGRESS is X iterations per second" line.
//
// The sleeps are scaled from the paper's 1 s to 50 ms so the example
// finishes quickly; the shape is unchanged: both variants progress at
// the same iterations/second because the slowest rank is always on the
// critical path, while the imbalanced variant wastes the early ranks'
// time busy-waiting at the barrier.
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"progresscap/internal/mpi"
)

const (
	ranks     = 24
	iters     = 5
	workScale = 50 * time.Millisecond // the paper's 1 s of work
)

func doEqualWork(time.Duration) time.Duration { return workScale }

func doUnequalWork(rank, size int) time.Duration {
	return time.Duration(float64(rank+1) / float64(size) * float64(workScale))
}

func runVariant(name string, equal bool) {
	var totalUnits int64 // one unit per scaled-microsecond slept
	err := mpi.Run(ranks, func(c *mpi.Comm) error {
		for i := 0; i < iters; i++ {
			start := c.Wtime()
			var d time.Duration
			if equal {
				d = doEqualWork(workScale)
			} else {
				d = doUnequalWork(c.Rank(), c.Size())
			}
			time.Sleep(d)
			atomic.AddInt64(&totalUnits, d.Microseconds())
			c.Barrier()
			if c.Rank() == 0 {
				elapsed := c.Wtime() - start
				fmt.Printf("  [%s] PROGRESS is %f iterations per second\n", name, 1.0/elapsed)
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  [%s] total work units: %d\n\n", name, totalUnits)
}

func main() {
	log.SetFlags(0)
	fmt.Printf("Listing 1 with %d ranks, %d iterations, work scaled to %v:\n\n", ranks, iters, workScale)
	runVariant("equal  ", true)
	runVariant("unequal", false)
	fmt.Println("Both variants report the same iterations/second (Definition 1);")
	fmt.Println("the unequal variant performs about half the work units (Definition 2).")
	fmt.Println("See `go run ./cmd/experiments -run table1` for the MIPS comparison.")
}
