// System plays out the full Argo power-management hierarchy from the
// paper's motivation (§II) across all three levels: a system controller
// distributes the machine's power envelope across jobs by priority, each
// job's manager divides its budget across nodes using online progress,
// and each node's RAPL enforcement carries the cap to the hardware.
//
// A low-priority job starts alone with the whole 260 W envelope; at
// t=12 s a high-priority job arrives and the system cuts the
// low-priority budget — watch its online progress track the cut.
package main

import (
	"fmt"
	"log"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/cluster"
	"progresscap/internal/engine"
)

func newJobManager(steps int, seed uint64) *cluster.Manager {
	cfg := engine.DefaultConfig()
	cfg.Seed = seed
	e, err := engine.New(cfg, apps.LAMMPS(apps.DefaultRanks, steps))
	if err != nil {
		log.Fatal(err)
	}
	m, err := cluster.NewManager(cluster.EqualSplit{}, cluster.ConstantBudget(1e9),
		cluster.NewNode(fmt.Sprintf("node-%d", seed), e))
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	log.SetFlags(0)

	low := newJobManager(1200, 1)
	high := newJobManager(400, 7)

	sys, err := cluster.NewSystem(260,
		cluster.NewSystemJob("low-priority", 1, 60, 0, low),
		cluster.NewSystemJob("high-priority", 4, 60, 12, high),
	)
	if err != nil {
		log.Fatal(err)
	}
	results, err := sys.Run(45 * time.Second)
	if err != nil {
		log.Fatal(err)
	}

	lowRes := results["low-priority"]
	fmt.Printf("%6s  %12s  %18s\n", "epoch", "budget (W)", "norm. progress")
	budgets := lowRes.BudgetTrace.Values()
	prog := lowRes.MeanProgress.Values()
	for i := 0; i < len(budgets) && i < len(prog); i++ {
		marker := ""
		if i == 12 {
			marker = "   <- high-priority job arrives"
		}
		fmt.Printf("%6d  %12.0f  %18.2f%s\n", i, budgets[i], prog[i], marker)
	}
	fmt.Println("\nThe system controller cut the low-priority job's budget when the")
	fmt.Println("high-priority job arrived; the job's NRM enforced the cut via RAPL and")
	fmt.Println("its online progress dropped accordingly — the paper's §II scenario")
	fmt.Println("running across all three levels of the hierarchy.")
}
