// Quickstart: run the LAMMPS workload model on the simulated node under
// the paper's step-function power cap and watch the online performance
// follow the cap (paper Fig 3).
package main

import (
	"fmt"
	"log"
	"time"

	"progresscap"
)

func main() {
	log.SetFlags(0)

	report, err := progresscap.Run(progresscap.RunConfig{
		App:     "LAMMPS",
		Seconds: 40,
		// Alternate: uncapped for 10 s, then a 90 W package cap for 10 s.
		Scheme: progresscap.StepCap(0, 90, 10*time.Second, 10*time.Second),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("application: %s (%s)\n", report.App, report.Metric)
	fmt.Printf("completed:   %v in %.1f virtual seconds, %.0f J\n",
		report.Completed, report.Elapsed, report.EnergyJ)
	fmt.Printf("behavior:    %s, mean %.0f %s\n\n", report.Behavior, report.MeanRate, report.Metric)

	fmt.Printf("%6s  %10s  %10s  %14s\n", "t(s)", "cap(W)", "power(W)", "progress/s")
	for i, ts := range report.Progress.Times {
		capW := "none"
		if i < len(report.CapW.Values) && report.CapW.Values[i] > 0 {
			capW = fmt.Sprintf("%.0f", report.CapW.Values[i])
		}
		fmt.Printf("%6.1f  %10s  %10.1f  %14.0f\n",
			ts, capW, report.PowerW.Values[i], report.Progress.Values[i])
	}
}
