// Faults demonstrates the degraded-signal state machine: an NRM
// enforcing a 120 W budget on LAMMPS loses its entire progress stream
// for 10 seconds mid-run (a monitoring blackout injected by the fault
// subsystem) and must ride it out without ever overshooting the budget,
// then re-trust the signal through probation once reports resume.
package main

import (
	"fmt"
	"log"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/engine"
	"progresscap/internal/fault"
	"progresscap/internal/nrm"
)

func main() {
	log.SetFlags(0)

	eng, err := engine.New(engine.DefaultConfig(), apps.LAMMPS(apps.DefaultRanks, 1600))
	if err != nil {
		log.Fatal(err)
	}
	// Install the fault plan before the NRM attaches: every progress
	// report published between t=8 s and t=18 s is silently dropped.
	eng.SetFaults(fault.NewInjector(fault.Plan{PubSub: fault.PubSubPlan{
		Blackouts: []fault.Window{{From: 8 * time.Second, To: 18 * time.Second}},
	}}))

	mgr, err := nrm.New(nrm.Config{Beta: 1.0}, eng)
	if err != nil {
		log.Fatal(err)
	}
	mgr.SetBudget(120)

	fmt.Printf("%6s  %10s  %6s  %8s  %8s\n", "epoch", "mode", "knob", "cap (W)", "reports")
	for epoch := 0; epoch < 32; epoch++ {
		done, err := mgr.Step()
		if err != nil {
			log.Fatal(err)
		}
		decs := mgr.Decisions()
		d := decs[len(decs)-1]
		reports := 0
		if samples := eng.Monitor().Samples(); len(samples) > 0 {
			reports = samples[len(samples)-1].Reports
		}
		fmt.Printf("%6d  %10s  %6s  %8.0f  %8d\n", epoch, d.Mode, d.Knob, d.Setting, reports)
		if done {
			break
		}
	}

	fmt.Println("\nmode transitions:")
	for _, tr := range mgr.ModeTransitions() {
		fmt.Printf("  t=%4.0fs  %-9s -> %-9s  %s\n", tr.At.Seconds(), tr.From, tr.To, tr.Reason)
	}
	res, err := eng.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrun used %.0f J over %.0f s\n", res.EnergyJ, res.Elapsed.Seconds())
	fmt.Println("While blind the NRM held a conservative RAPL cap instead of trusting a")
	fmt.Println("silent signal; when reports resumed it re-entered normal control only")
	fmt.Println("after a clean probation period.")
}
