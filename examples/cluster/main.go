// Cluster demonstrates the level above the node in the paper's Argo
// power-management hierarchy (§II): a job of three 24-core nodes with
// heterogeneous silicon receives one power budget, and the job manager
// divides it using per-node online progress. Progress-aware division
// raises the job's synchronous (minimum) progress and collapses the
// spread between nodes compared with an equal split.
package main

import (
	"fmt"
	"log"

	"progresscap"
)

func main() {
	log.SetFlags(0)

	nodes := []progresscap.NodeSpec{
		{Name: "good", App: "LAMMPS", PowerScale: 1.00, Seed: 1},
		{Name: "ok", App: "LAMMPS", PowerScale: 1.12, Seed: 2},
		{Name: "leaky", App: "LAMMPS", PowerScale: 1.25, Seed: 3},
	}

	fmt.Printf("%16s  %18s  %18s\n", "policy", "mean min-progress", "total energy (kJ)")
	for _, policy := range []string{"equal-split", "progress-aware"} {
		rep, err := progresscap.RunCluster(progresscap.ClusterConfig{
			Nodes:   nodes,
			Policy:  policy,
			BudgetW: 330,
			Seconds: 30,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%16s  %18.3f  %18.1f\n", policy, rep.MeanMinProgress, rep.TotalEnergyJ/1000)
	}

	fmt.Println("\nWith the same 330 W job budget, steering power toward the node whose")
	fmt.Println("online progress lags (the least efficient silicon) raises the rate at")
	fmt.Println("which the whole bulk-synchronous job advances — a policy that requires")
	fmt.Println("the paper's application-level progress metric, not just power telemetry.")
}
