// Modelfit walks the paper's Fig 4 workflow for one application:
// characterize β with the two-frequency procedure, fit the analytical
// model (α = 2, P_corecap = β·P_cap), then compare its predicted change
// in progress against measurement across a package-cap sweep.
package main

import (
	"flag"
	"fmt"
	"log"

	"progresscap"
)

func main() {
	log.SetFlags(0)
	// LAMMPS default: single-phase, so the baseline and the capped runs
	// measure the same work mix even for short -seconds values. Phased
	// applications (QMCPACK, OpenMC) want -seconds 20+ so one phase
	// dominates the averages.
	app := flag.String("app", "LAMMPS", "application to model")
	seconds := flag.Float64("seconds", 12, "virtual seconds per measurement run")
	flag.Parse()

	c, err := progresscap.Characterize(*app, *seconds, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s characterization: β=%.2f MPO=%.3g baseline=%.2f/s at %.1f W package\n\n",
		c.App, c.Beta, c.MPO, c.BaselineRate, c.BaselinePkgW)

	m, err := progresscap.FitModel(c)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%10s  %12s  %12s  %8s\n", "P_cap(W)", "measured Δ", "predicted Δ", "err %")
	for _, capW := range []float64{160, 140, 120, 100, 80, 65} {
		rep, err := progresscap.Run(progresscap.RunConfig{
			App:     *app,
			Seconds: *seconds,
			Scheme:  progresscap.ConstantCap(capW),
		})
		if err != nil {
			log.Fatal(err)
		}
		// Steady capped rate: skip the controller's settling windows.
		rates := rep.Progress.Values
		if len(rates) > 3 {
			rates = rates[2 : len(rates)-1]
		}
		var sum float64
		for _, r := range rates {
			sum += r
		}
		measured := c.BaselineRate - sum/float64(len(rates))
		predicted := m.PredictDelta(capW)
		errPct := 0.0
		if measured != 0 {
			errPct = 100 * abs(measured-predicted) / abs(measured)
		}
		fmt.Printf("%10.0f  %12.3f  %12.3f  %8.1f\n", capW, measured, predicted, errPct)
	}

	target := c.BaselineRate * 0.75
	capW, err := m.CapForProgress(target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTo sustain %.2f/s (75%% of baseline) the model budgets a %.0f W package cap.\n", target, capW)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
