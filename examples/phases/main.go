// Phases reproduces the paper's Fig 1 (right): monitoring QMCPACK's
// blocks-per-second online performance at runtime makes the VMC1, VMC2,
// and DMC phases clearly distinguishable — information that a static
// end-of-run figure of merit misses entirely.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"progresscap"
)

func main() {
	log.SetFlags(0)

	report, err := progresscap.Run(progresscap.RunConfig{App: "QMCPACK", Seconds: 36})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("QMCPACK online performance (%s), classified %q:\n\n", report.Metric, report.Behavior)
	max := 0.0
	for _, v := range report.Progress.Values {
		if v > max {
			max = v
		}
	}
	for i, v := range report.Progress.Values {
		bar := strings.Repeat("#", int(math.Round(v/max*50)))
		fmt.Printf("%5.0fs %6.1f %s\n", report.Progress.Times[i], v, bar)
	}
	fmt.Println("\nThe three levels are the VMC1 (~8 blocks/s), VMC2 (~12 blocks/s), and")
	fmt.Println("DMC (~16 blocks/s) phases computing blocks at different rates.")
}
