# Convenience targets for the progresscap repository.

GO ?= go

.PHONY: all build vet test race bench experiments figures clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/pubsub/ ./internal/mpi/ ./internal/omp/

# One benchmark per paper table/figure plus ablations and micro-benches.
bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every table and figure as text.
experiments:
	$(GO) run ./cmd/experiments

# Regenerate everything with CSV data and SVG figures under out/.
figures:
	$(GO) run ./cmd/experiments -csv out -svg out

clean:
	rm -rf out
