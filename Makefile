# Convenience targets for the progresscap repository.

GO ?= go

.PHONY: all verify build vet test test-race race soak bench bench-smoke experiments figures clean

# `make` with no target runs the pre-merge gate.
.DEFAULT_GOAL := verify

all: build vet test test-race soak bench-smoke

# The one-command pre-merge gate: build, vet, the full suite under the
# race detector, and a single pass of every benchmark.
verify: build vet test-race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector (the concurrent transport and
# runtime shims are where races would live, but fault-injection tests
# exercise reconnect paths across the whole tree).
test-race:
	$(GO) test -race ./...

# Back-compat alias for the old target name.
race: test-race

# Chaos-restart soak: kill the supervised policy daemon at randomized
# times and assert recovery invariants, under the race detector.
# SOAK_ITERS scales the loop (default 2 in-test; bump for longer soaks).
SOAK_ITERS ?= 4
soak:
	SOAK_ITERS=$(SOAK_ITERS) $(GO) test -race -run TestChaosRestartSoak -v ./internal/experiments/

# One benchmark per paper table/figure plus ablations and micro-benches.
# Results are parsed into the tracked baseline BENCH_<date>.json so the
# perf trajectory is recorded PR-over-PR (see cmd/benchreport).
BENCH_DATE := $(shell date +%F)
bench:
	$(GO) test -run='^$$' -bench=. -benchmem . | $(GO) run ./cmd/benchreport -echo -o BENCH_$(BENCH_DATE).json

# One iteration of every benchmark through the benchreport parser — no
# regression gate, just keeps the bench harness itself from rotting.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem . | $(GO) run ./cmd/benchreport -o /dev/null

# Regenerate every table and figure as text.
experiments:
	$(GO) run ./cmd/experiments

# Regenerate everything with CSV data and SVG figures under out/.
figures:
	$(GO) run ./cmd/experiments -csv out -svg out

clean:
	rm -rf out
