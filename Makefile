# Convenience targets for the progresscap repository.

GO ?= go

.PHONY: all verify build vet test test-race race soak soak-short soak-backends soak-restart bench bench-smoke bench-diff profile experiments figures clean

# `make` with no target runs the pre-merge gate.
.DEFAULT_GOAL := verify

all: build vet test test-race soak-restart soak bench-smoke

# The one-command pre-merge gate: build, vet, the full suite under the
# race detector, a short randomized scenario soak, the backend-hardening
# soak, a single pass of every benchmark, and — whenever a tracked
# baseline exists — the recorded-perf regression gate.
verify: build vet test-race soak-short soak-backends bench-smoke bench-diff

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector (the concurrent transport and
# runtime shims are where races would live, but fault-injection tests
# exercise reconnect paths across the whole tree).
test-race:
	$(GO) test -race ./...

# Back-compat alias for the old target name.
race: test-race

# Property soak: generate SEEDS randomized scenario specs and run each
# under the invariant-oracle battery (budget, deadman revert, journal
# replay, engine invariants, macro≡fixed-tick, progress). Failures are
# shrunk to minimal repro specs under out/soak/, replayable with
# `go run ./cmd/experiments -spec <file>`.
SEEDS ?= 25
soak:
	$(GO) run ./cmd/soak -seeds $(SEEDS) -cachedir out/cache -cacheprune 168h -forking

# The quick deterministic slice of the same soak that rides in `verify`.
# -forking routes single-node scenarios through the checkpoint/fork pool
# (an execution knob: oracle outcomes are identical), so the pre-merge
# gate exercises the fork path on generated scenarios, on top of the
# race-enabled fork-vs-scratch oracle in test-race.
soak-short:
	$(GO) run ./cmd/soak -seeds 12 -forking

# Backend-hardening soak: the same generated scenarios forced onto the
# sysfs actuation path (hardened actuator over the emulated powercap
# tree), plus the supervised backend-failover property test — flapping
# backends and daemon kills must never breach the budget or leave the
# register unarmed.
soak-backends:
	$(GO) run ./cmd/soak -seeds 12 -backend sysfs
	$(GO) test -run TestSupervisedBackendFailoverProperty ./internal/soak/

# Chaos-restart soak: kill the supervised policy daemon at randomized
# times and assert recovery invariants, under the race detector.
# SOAK_ITERS scales the loop (default 2 in-test; bump for longer soaks).
SOAK_ITERS ?= 4
soak-restart:
	SOAK_ITERS=$(SOAK_ITERS) $(GO) test -race -run TestChaosRestartSoak -v ./internal/experiments/

# One benchmark per paper table/figure plus ablations, cluster-stepping
# pairs, and micro-benches. Results are parsed into the tracked baseline
# BENCH_<date>.json so the perf trajectory is recorded PR-over-PR (see
# cmd/benchreport). -count=3 lets benchreport keep the fastest sample
# per benchmark, rejecting shared-host scheduling noise.
BENCH_DATE := $(shell date +%F)
BENCH_COUNT ?= 3
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -count=$(BENCH_COUNT) . | $(GO) run ./cmd/benchreport -echo -o BENCH_$(BENCH_DATE).json

# One iteration of every benchmark through the benchreport parser — no
# regression gate, just keeps the bench harness itself from rotting.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem . | $(GO) run ./cmd/benchreport -o /dev/null

# Gate on the recorded perf trajectory: diff the newest tracked baseline
# against its own embedded same-host "before" when it carries one, else
# against the next-newest file, failing on any >10% ns/op regression.
# Same-host pairs are preferred because the shared-CPU hosts these run
# on drift 15-20% in absolute speed day to day — a cross-date file diff
# would gate on the host, not the code. A no-op in a tree with no
# baselines yet.
BENCH_FILES := $(shell ls -1 BENCH_*.json 2>/dev/null | sort -r)
BENCH_NEWEST := $(word 1,$(BENCH_FILES))
BENCH_PREV := $(word 2,$(BENCH_FILES))
bench-diff:
ifeq ($(BENCH_NEWEST),)
	@echo "bench-diff: no BENCH_*.json baseline tracked; skipping"
else ifeq ($(BENCH_PREV),)
	$(GO) run ./cmd/benchreport -diff $(BENCH_NEWEST)
else
	$(GO) run ./cmd/benchreport -diff -prefer-embedded $(BENCH_PREV) $(BENCH_NEWEST)
endif

# CPU + heap profiles of the full experiment suite, for pprof.
# `go tool pprof out/cpu.pprof` / `go tool pprof out/mem.pprof`.
profile:
	mkdir -p out
	$(GO) run ./cmd/experiments -cpuprofile out/cpu.pprof -memprofile out/mem.pprof > /dev/null
	@echo "profiles written to out/cpu.pprof and out/mem.pprof"

# Regenerate every table and figure as text.
experiments:
	$(GO) run ./cmd/experiments

# Regenerate everything with CSV data and SVG figures under out/.
figures:
	$(GO) run ./cmd/experiments -csv out -svg out

clean:
	rm -rf out
