# Convenience targets for the progresscap repository.

GO ?= go

.PHONY: all build vet test test-race race bench experiments figures clean

all: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector (the concurrent transport and
# runtime shims are where races would live, but fault-injection tests
# exercise reconnect paths across the whole tree).
test-race:
	$(GO) test -race ./...

# Back-compat alias for the old target name.
race: test-race

# One benchmark per paper table/figure plus ablations and micro-benches.
bench:
	$(GO) test -bench=. -benchmem .

# Regenerate every table and figure as text.
experiments:
	$(GO) run ./cmd/experiments

# Regenerate everything with CSV data and SVG figures under out/.
figures:
	$(GO) run ./cmd/experiments -csv out -svg out

clean:
	rm -rf out
