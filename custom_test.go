package progresscap

import (
	"math"
	"testing"
	"time"
)

func miniApp() CustomApp {
	return CustomApp{
		Name:   "miniapp",
		Metric: "sweeps/s",
		Ranks:  24,
		Phases: []CustomPhase{{
			Name:       "sweep",
			Iterations: 120,
			Period:     100 * time.Millisecond,
			Beta:       0.6,
			IPC:        1.4,
			MPO:        5e-3,
		}},
	}
}

func TestRunCustomBasic(t *testing.T) {
	rep, err := RunCustom(miniApp(), RunConfig{Seconds: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("custom app incomplete")
	}
	if rep.App != "miniapp" || rep.Metric != "sweeps/s" {
		t.Fatalf("identity: %s / %s", rep.App, rep.Metric)
	}
	// 120 iterations at 100 ms → ~10/s for ~12 s.
	if rep.MeanRate < 9 || rep.MeanRate > 11 {
		t.Fatalf("rate = %v, want ~10", rep.MeanRate)
	}
	if math.Abs(rep.Elapsed-12) > 1 {
		t.Fatalf("elapsed = %v, want ~12 s", rep.Elapsed)
	}
}

func TestRunCustomUnderCapSlows(t *testing.T) {
	free, err := RunCustom(miniApp(), RunConfig{Seconds: 15})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := RunCustom(miniApp(), RunConfig{Seconds: 15, Scheme: ConstantCap(90)})
	if err != nil {
		t.Fatal(err)
	}
	if capped.MeanRate >= free.MeanRate*0.97 {
		t.Fatalf("cap had no effect: %v vs %v", capped.MeanRate, free.MeanRate)
	}
}

func TestCharacterizeCustomRecoversBeta(t *testing.T) {
	app := miniApp()
	c, err := CharacterizeCustom(app, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Beta-0.6) > 0.04 {
		t.Fatalf("β = %v, want ~0.6", c.Beta)
	}
	if math.Abs(c.MPO-5e-3)/5e-3 > 0.25 {
		t.Fatalf("MPO = %v, want ~5e-3", c.MPO)
	}
	if c.BaselineRate < 9 || c.BaselineRate > 11 {
		t.Fatalf("baseline = %v", c.BaselineRate)
	}
	m, err := FitModel(c)
	if err != nil {
		t.Fatal(err)
	}
	if m.PredictProgress(80) >= c.BaselineRate {
		t.Fatal("capped prediction not below baseline")
	}
}

func TestCustomPhasedBehavior(t *testing.T) {
	app := CustomApp{
		Name: "twophase",
		Phases: []CustomPhase{
			{Name: "slow", Iterations: 80, Period: 125 * time.Millisecond, Beta: 0.9},
			{Name: "fast", Iterations: 160, Period: 62500 * time.Microsecond, Beta: 0.9},
		},
	}
	rep, err := RunCustom(app, RunConfig{Seconds: 25})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Behavior != "phased" {
		t.Fatalf("behavior = %q, want phased", rep.Behavior)
	}
}

func TestCustomImbalanceVisible(t *testing.T) {
	app := miniApp()
	app.Phases[0].RankImbalance = 0.3
	rep, err := RunCustom(app, RunConfig{Seconds: 12})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Imbalance < 0.02 {
		t.Fatalf("imbalance index = %v, expected visible spin", rep.Imbalance)
	}
	balanced, err := RunCustom(miniApp(), RunConfig{Seconds: 12})
	if err != nil {
		t.Fatal(err)
	}
	if balanced.Imbalance >= rep.Imbalance {
		t.Fatalf("balanced index %v not below imbalanced %v", balanced.Imbalance, rep.Imbalance)
	}
}

func TestCustomValidation(t *testing.T) {
	bad := []CustomApp{
		{},
		{Name: "x"},
		{Name: "x", Phases: []CustomPhase{{Iterations: 0, Period: time.Second, Beta: 0.5}}},
		{Name: "x", Phases: []CustomPhase{{Iterations: 1, Period: 0, Beta: 0.5}}},
		{Name: "x", Phases: []CustomPhase{{Iterations: 1, Period: time.Millisecond, Beta: 0.5}}},
		{Name: "x", Phases: []CustomPhase{{Iterations: 1, Period: time.Second, Beta: 0}}},
		{Name: "x", Phases: []CustomPhase{{Iterations: 1, Period: time.Second, Beta: 1.5}}},
		{Name: "x", Phases: []CustomPhase{{Iterations: 1, Period: time.Second, Beta: 0.5, Jitter: 1}}},
		{Name: "x", Phases: []CustomPhase{{Iterations: 1, Period: time.Second, Beta: 0.5, BWShare: 2}}},
		{Name: "x", Ranks: -1, Phases: []CustomPhase{{Iterations: 1, Period: time.Second, Beta: 0.5}}},
	}
	for i, app := range bad {
		if _, err := RunCustom(app, RunConfig{Seconds: 5}); err == nil {
			t.Errorf("bad custom app %d accepted", i)
		}
	}
}
