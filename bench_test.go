package progresscap

// One benchmark per table and figure of the paper (see DESIGN.md's
// experiment index): each regenerates the artifact at the harness's
// default scale and reports headline numbers as custom metrics. Run with
//
//	go test -bench=. -benchmem
//
// plus micro-benchmarks of the simulation substrate at the bottom.
import (
	"testing"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/cluster"
	"progresscap/internal/counters"
	"progresscap/internal/engine"
	"progresscap/internal/experiments"
	"progresscap/internal/msr"
	"progresscap/internal/policy"
	"progresscap/internal/powercap"
	"progresscap/internal/pubsub"
	"progresscap/internal/rapl"
	"progresscap/internal/stats"
	"progresscap/internal/workload"
)

// benchOpts is the harness scale for the artifact benchmarks — the same
// DefaultOptions the tests use, so benchmarks and tests can't silently
// diverge. Each call returns a fresh Options (fresh memoizing runner):
// cross-iteration caching would make b.N iterations nearly free and
// destroy the measurement.
func benchOpts() experiments.Options {
	return experiments.DefaultOptions()
}

func BenchmarkTable1MIPSVsProgress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		art, err := experiments.Table1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if art.Tables[0].NumRows() != 2 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkTable2to4Metadata(b *testing.B) {
	for i := 0; i < b.N; i++ {
		art := experiments.Tables2to4()
		if len(art.Tables) != 3 {
			b.Fatal("unexpected artifact shape")
		}
	}
}

func BenchmarkTable5Categorization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		art := experiments.Table5()
		if art.Tables[0].NumRows() != 9 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkTable6BetaMPO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		art, err := experiments.Table6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if art.Tables[0].NumRows() != 5 {
			b.Fatal("unexpected table shape")
		}
	}
}

func BenchmarkFigure1Characterize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2RAPLAware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3DynamicSchemes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4ModelVsMeasured(b *testing.B) {
	var meanErr float64
	for i := 0; i < b.N; i++ {
		data, err := experiments.Figure4Data(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var errs []float64
		for _, app := range data {
			for _, p := range app.Points {
				errs = append(errs, p.ErrPct)
			}
		}
		meanErr = stats.Mean(errs)
	}
	b.ReportMetric(meanErr, "mean-model-err-%")
}

func BenchmarkFigure5RAPLvsDVFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- extension / ablation benchmarks (DESIGN.md extensions) ---

// BenchmarkAblationAlphaFit quantifies the model improvement from
// fitting α per application instead of the paper's fixed α=2.
func BenchmarkAblationAlphaFit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtAlphaFit(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTechniques compares the NRM's three power-limiting
// knobs (RAPL / DVFS / DDCM) on compute- and memory-bound codes.
func BenchmarkAblationTechniques(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtTechniques(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompositeProgress exercises the Category 3 (URBAN) weighted
// multi-component progress extension.
func BenchmarkCompositeProgress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtComposite(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationClusterPolicies compares job-level power-division
// policies over heterogeneous nodes.
func BenchmarkAblationClusterPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtCluster(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEnergy sweeps energy-to-solution and EDP across the
// cap range for fixed work.
func BenchmarkAblationEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtEnergy(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMethod cross-validates constant-cap measurement
// against the paper's step schedule.
func BenchmarkAblationMethod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtMethod(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- cluster stepping benchmarks ---

// benchClusterEpochs measures intra-epoch node advancement on a 256-node
// fleet at the given shard worker bound. Construction is off the clock;
// the measured region is the epoch loop — cap decision, RAPL writes, and
// the (serial or sharded) engine advances. Reported as node-epochs/s so
// the number is comparable across fleet sizes.
func benchClusterEpochs(b *testing.B, workers int) {
	const fleetNodes, epochs = 256, 4
	b.ReportAllocs()
	var nodeEpochs int
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		opts := benchOpts()
		opts.Seed = uint64(i + 1)
		opts.NodeWorkers = workers
		m, err := experiments.NewFleetManager(opts, fleetNodes, cluster.EqualSplit{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for e := 0; e < epochs; e++ {
			if _, err := m.Step(); err != nil {
				b.Fatal(err)
			}
		}
		nodeEpochs += fleetNodes * epochs
	}
	b.ReportMetric(float64(nodeEpochs)/b.Elapsed().Seconds(), "node-epochs/s")
}

// BenchmarkClusterEpochSerial is the workers=1 baseline: every node
// advanced in index order on the stepping goroutine, as every Manager
// ran before the shard pool existed.
func BenchmarkClusterEpochSerial(b *testing.B) { benchClusterEpochs(b, 1) }

// BenchmarkClusterEpochParallel is the same fleet sharded across
// GOMAXPROCS workers. benchreport derives parallel_speedup from this
// pair; on a multi-core host it should approach min(GOMAXPROCS, shards),
// and on a 1-CPU host ~1.0 (the pool's only overhead is goroutine
// startup and the epoch barrier).
func BenchmarkClusterEpochParallel(b *testing.B) { benchClusterEpochs(b, 0) }

// --- checkpoint/fork benchmarks ---

// BenchmarkCheckpointResume prices the fork substrate itself: one deep
// Checkpoint of a capped mid-run engine plus one Resume onto a freshly
// constructed twin (engine construction is off the clock; the replayed
// generator calls inside Resume are part of its honest cost).
func BenchmarkCheckpointResume(b *testing.B) {
	mk := func() *engine.Engine {
		cfg := engine.DefaultConfig()
		e, err := engine.New(cfg, apps.STREAM(apps.DefaultRanks, 100000))
		if err != nil {
			b.Fatal(err)
		}
		if err := e.SetScheme(policy.Constant{Watts: 110}); err != nil {
			b.Fatal(err)
		}
		return e
	}
	donor := mk()
	if err := donor.Begin(); err != nil {
		b.Fatal(err)
	}
	if _, err := donor.Advance(6 * time.Second); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ck, err := donor.Checkpoint()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		fresh := mk()
		b.StartTimer()
		if err := fresh.Resume(ck); err != nil {
			b.Fatal(err)
		}
	}
}

// benchForkSweep runs a sweep-heavy cell ladder — six Step schemes that
// share an 8-second uncapped-prefix and diverge in their low-cap phase —
// through one serial Runner, from scratch or with checkpoint forking.
// benchreport derives fork_speedup from the Scratch/Forked ns/op pair
// and fork_hit_rate from the custom metrics.
func benchForkSweep(b *testing.B, forking bool) {
	lows := []float64{70, 80, 90, 100, 110, 120}
	b.ReportAllocs()
	var hits, runs uint64
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(1)
		for _, low := range lows {
			rs := experiments.RunSpec{
				Make:       func() *workload.Workload { return apps.STREAM(apps.DefaultRanks, 100000) },
				Scheme:     policy.Step{HighW: 140, LowW: low, HighFor: 8 * time.Second, LowFor: 4 * time.Second},
				Seed:       1,
				MaxSeconds: 12,
				Forking:    forking,
			}
			if _, err := r.Do(rs); err != nil {
				b.Fatal(err)
			}
		}
		st := r.Stats()
		hits += st.ForkHits
		runs += st.ForkRuns
	}
	if forking {
		b.ReportMetric(float64(hits)/float64(b.N), "fork_hits")
		b.ReportMetric(float64(runs)/float64(b.N), "fork_runs")
	}
}

// BenchmarkForkSweepScratch is the ladder with every cell simulated in
// full — the pre-fork cost of the sweep.
func BenchmarkForkSweepScratch(b *testing.B) { benchForkSweep(b, false) }

// BenchmarkForkSweepForked is the same ladder with prefix forking: the
// first cell simulates 12 virtual seconds, the other five fork from its
// pooled depth-8 checkpoint and simulate only their divergent tails.
func BenchmarkForkSweepForked(b *testing.B) { benchForkSweep(b, true) }

// --- substrate micro-benchmarks ---

// BenchmarkEngineTicks measures raw co-simulation throughput: virtual
// seconds of a 24-rank LAMMPS run simulated per wall second.
func BenchmarkEngineTicks(b *testing.B) {
	b.ReportAllocs()
	var virtual time.Duration
	for i := 0; i < b.N; i++ {
		cfg := engine.DefaultConfig()
		cfg.Seed = uint64(i + 1)
		e, err := engine.New(cfg, apps.LAMMPS(apps.DefaultRanks, 100))
		if err != nil {
			b.Fatal(err)
		}
		res, err := e.Run(time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		virtual += res.Elapsed
	}
	b.ReportMetric(virtual.Seconds()/b.Elapsed().Seconds(), "virtual-s/s")
}

// BenchmarkEngineTicksCapped is the same measurement with an active RAPL
// capping loop. The controller is never quiescent here, so the event
// horizon is bounded by the 1ms control period — the honest throughput
// number for capped production runs, where the uncapped benchmark's
// control-skip optimization cannot apply.
func BenchmarkEngineTicksCapped(b *testing.B) {
	b.ReportAllocs()
	var virtual time.Duration
	for i := 0; i < b.N; i++ {
		cfg := engine.DefaultConfig()
		cfg.Seed = uint64(i + 1)
		e, err := engine.New(cfg, apps.LAMMPS(apps.DefaultRanks, 100))
		if err != nil {
			b.Fatal(err)
		}
		if err := e.SetScheme(policy.Constant{Watts: 110}); err != nil {
			b.Fatal(err)
		}
		res, err := e.Run(time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		virtual += res.Elapsed
	}
	b.ReportMetric(virtual.Seconds()/b.Elapsed().Seconds(), "virtual-s/s")
}

// BenchmarkEngineTicksFixed pins the fixed-tick oracle's cost on the
// uncapped workload, so the macro-vs-tick gap itself is tracked.
func BenchmarkEngineTicksFixed(b *testing.B) {
	b.ReportAllocs()
	var virtual time.Duration
	for i := 0; i < b.N; i++ {
		cfg := engine.DefaultConfig()
		cfg.FixedTick = true
		cfg.Seed = uint64(i + 1)
		e, err := engine.New(cfg, apps.LAMMPS(apps.DefaultRanks, 100))
		if err != nil {
			b.Fatal(err)
		}
		res, err := e.Run(time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		virtual += res.Elapsed
	}
	b.ReportMetric(virtual.Seconds()/b.Elapsed().Seconds(), "virtual-s/s")
}

func BenchmarkWorkloadStep(b *testing.B) {
	w := apps.STREAM(apps.DefaultRanks, 1<<30)
	bank := counters.NewBank(apps.DefaultRanks)
	e, err := workload.NewExec(w, bank, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	now := time.Duration(0)
	for i := 0; i < b.N; i++ {
		now += 100 * time.Microsecond
		e.Step(now, 100*time.Microsecond, 3.3e9, 1)
	}
}

func BenchmarkPubSubPublish(b *testing.B) {
	bus := pubsub.NewBus()
	sub := bus.Subscribe("progress.", 1024)
	payload := []byte("12345.678")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bus.Publish(pubsub.Message{Topic: "progress.lammps", Payload: payload})
		if i%512 == 0 {
			sub.DrainInto(nil)
		}
	}
}

func BenchmarkMSRWriteRead(b *testing.B) {
	dev := msr.NewDevice(24, nil)
	u := msr.DefaultUnits()
	val := msr.EncodePowerLimit(msr.PowerLimit{Watts: 100, Enabled: true, WindowSeconds: 0.01}, u)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dev.Write(msr.PkgPowerLimit, val); err != nil {
			b.Fatal(err)
		}
		if _, err := dev.Read(msr.PkgPowerLimit); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelPredict(b *testing.B) {
	c := Characterization{App: "STREAM", Beta: 0.37, BaselineRate: 16, BaselinePkgW: 180}
	m, err := FitModel(c)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.PredictDelta(60 + float64(i%100))
	}
	_ = sink
}

// BenchmarkActuationRetry measures a hardened cap write through the
// retry/failover actuator against a sysfs backend that returns EAGAIN
// on every other limit write — the steady-state cost of flap-absorbing
// actuation (retry bookkeeping, read-back verify, health accounting),
// not the happy path BenchmarkMSRWriteRead prices.
func BenchmarkActuationRetry(b *testing.B) {
	dev := msr.NewDevice(24, nil)
	zone := powercap.NewZone(dev, msr.DefaultUnits())
	var writes uint64
	zone.SetFaultHook(func(op powercap.FaultOp, file string, now time.Duration) powercap.FaultClass {
		if op == powercap.OpWrite && file == powercap.FilePowerLimitUW {
			writes++
			if writes%2 == 1 {
				return powercap.FaultAgain
			}
		}
		return powercap.FaultNone
	})
	act := rapl.NewActuator(rapl.ActuatorConfig{
		Backends: []rapl.Backend{
			powercap.NewBackend(zone),
			rapl.NewMSRBackend(dev, 10*time.Millisecond),
		},
		Seed: 1,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := act.WriteCap(time.Duration(i)*time.Millisecond, 80+float64(i%40)); err != nil {
			b.Fatal(err)
		}
	}
	c := act.Counters()
	b.ReportMetric(float64(c.Retries)/float64(b.N), "retries/op")
}
