module progresscap

go 1.22
