package progresscap

// JSON persistence for characterizations and fitted models, so the
// expensive two-frequency characterization (§IV-A) can run once per
// application and be reused by policy tools (cmd/characterize produces
// these files).

import (
	"encoding/json"
	"fmt"

	"progresscap/internal/model"
)

// characterizationJSON is the stable on-disk schema.
type characterizationJSON struct {
	Version      int     `json:"version"`
	App          string  `json:"app"`
	Beta         float64 `json:"beta"`
	MPO          float64 `json:"mpo"`
	BaselineRate float64 `json:"baseline_rate"`
	BaselinePkgW float64 `json:"baseline_pkg_w"`
	// Alpha records the exponent to use for predictions; 0 means the
	// paper's default (2).
	Alpha float64 `json:"alpha,omitempty"`
}

const characterizationVersion = 1

// JSON serializes the characterization.
func (c Characterization) JSON() ([]byte, error) {
	return json.MarshalIndent(characterizationJSON{
		Version:      characterizationVersion,
		App:          c.App,
		Beta:         c.Beta,
		MPO:          c.MPO,
		BaselineRate: c.BaselineRate,
		BaselinePkgW: c.BaselinePkgW,
	}, "", "  ")
}

// ParseCharacterization deserializes a characterization produced by
// JSON, validating its fields.
func ParseCharacterization(data []byte) (Characterization, error) {
	var j characterizationJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return Characterization{}, fmt.Errorf("progresscap: parsing characterization: %w", err)
	}
	if j.Version != characterizationVersion {
		return Characterization{}, fmt.Errorf("progresscap: unsupported characterization version %d", j.Version)
	}
	c := Characterization{
		App:          j.App,
		Beta:         j.Beta,
		MPO:          j.MPO,
		BaselineRate: j.BaselineRate,
		BaselinePkgW: j.BaselinePkgW,
	}
	// Validate through the model constructor (β, rates, power ranges).
	if _, err := model.FromBaseline(c.Beta, c.BaselineRate, c.BaselinePkgW); err != nil {
		return Characterization{}, fmt.Errorf("progresscap: invalid characterization: %w", err)
	}
	if c.MPO < 0 {
		return Characterization{}, fmt.Errorf("progresscap: invalid MPO %v", c.MPO)
	}
	return c, nil
}

// FitModelWithAlpha is FitModel followed by fitting α to measured
// calibration points (cap in watts → measured rate), the extension the
// paper's discussion proposes instead of the fixed α=2.
func FitModelWithAlpha(c Characterization, caps []float64, rates []float64) (Model, error) {
	if len(caps) != len(rates) {
		return Model{}, fmt.Errorf("progresscap: %d caps vs %d rates", len(caps), len(rates))
	}
	base, err := model.FromBaseline(c.Beta, c.BaselineRate, c.BaselinePkgW)
	if err != nil {
		return Model{}, err
	}
	pts := make([]model.CalibrationPoint, len(caps))
	for i := range caps {
		pts[i] = model.CalibrationPoint{PkgCapW: caps[i], Rate: rates[i]}
	}
	fitted, err := model.FitAlpha(base, pts)
	if err != nil {
		return Model{}, err
	}
	return Model{p: fitted}, nil
}

// Alpha returns the model's frequency exponent.
func (m Model) Alpha() float64 { return m.p.Alpha }
