package progresscap

// Public API for the node resource manager (§II): budget enforcement and
// progress targets driven by the online progress signal.

import (
	"fmt"
	"sort"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/engine"
	"progresscap/internal/nrm"
)

// BudgetChange retargets the NRM at a point in the run.
type BudgetChange struct {
	AtSeconds float64
	// Watts is the new node power budget (0 = uncapped).
	Watts float64
	// TargetRate, when nonzero, switches the NRM to progress-target mode
	// instead (Watts is then ignored).
	TargetRate float64
}

// NRMConfig describes a managed run.
type NRMConfig struct {
	// App is a runnable registry name.
	App string
	// Seconds sizes the workload (default 30).
	Seconds float64
	// Beta is the characterized compute-boundedness (0 lets the NRM
	// assume compute-bound until it learns otherwise).
	Beta float64
	// DVFSTable optionally calibrates pinned frequencies → package power
	// so the NRM can choose DVFS over RAPL where it preserves more
	// measured progress.
	DVFSTable map[float64]float64 // MHz -> W
	// Schedule lists budget/target changes in time order.
	Schedule []BudgetChange
	Seed     uint64
}

// NRMDecision is one epoch's enforcement choice.
type NRMDecision struct {
	AtSeconds float64
	BudgetW   float64
	Knob      string // "none", "rapl", "dvfs"
	Setting   float64
}

// NRMReport is the outcome of RunNRM.
type NRMReport struct {
	Elapsed      float64
	Completed    bool
	BaselineRate float64
	PhaseChanges int
	Decisions    []NRMDecision
	Progress     Series
	PowerW       Series
	EnergyJ      float64
}

// RunNRM runs an application under the node resource manager, applying
// the budget/target schedule. The NRM calibrates an uncapped baseline,
// fits the paper's model, and on each change compares RAPL against DVFS
// by measurement before committing.
func RunNRM(cfg NRMConfig) (*NRMReport, error) {
	if cfg.Seconds == 0 {
		cfg.Seconds = 30
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	info, err := apps.Lookup(cfg.App)
	if err != nil {
		return nil, err
	}
	if !info.Runnable() {
		return nil, fmt.Errorf("progresscap: %s has no workload model", cfg.App)
	}
	ecfg := engine.DefaultConfig()
	ecfg.Seed = cfg.Seed
	eng, err := engine.New(ecfg, info.Build(cfg.Seconds))
	if err != nil {
		return nil, err
	}
	var table []nrm.DVFSPoint
	for mhz, w := range cfg.DVFSTable {
		table = append(table, nrm.DVFSPoint{MHz: mhz, PowerW: w})
	}
	sort.Slice(table, func(i, j int) bool { return table[i].MHz < table[j].MHz })
	mgr, err := nrm.New(nrm.Config{Beta: cfg.Beta, DVFSTable: table}, eng)
	if err != nil {
		return nil, err
	}

	schedule := append([]BudgetChange(nil), cfg.Schedule...)
	sort.SliceStable(schedule, func(i, j int) bool { return schedule[i].AtSeconds < schedule[j].AtSeconds })

	deadline := time.Duration(cfg.Seconds*6) * time.Second
	next := 0
	for eng.Clock().Now() < deadline {
		nowSec := eng.Clock().Now().Seconds()
		for next < len(schedule) && schedule[next].AtSeconds <= nowSec {
			ch := schedule[next]
			if ch.TargetRate > 0 {
				mgr.SetTargetProgress(ch.TargetRate)
			} else {
				mgr.SetBudget(ch.Watts)
			}
			next++
		}
		done, err := mgr.Step()
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	res, err := eng.Finish()
	if err != nil {
		return nil, err
	}

	rep := &NRMReport{
		Elapsed:      res.Elapsed.Seconds(),
		Completed:    res.Completed,
		BaselineRate: mgr.BaselineRate(),
		PhaseChanges: mgr.PhaseChanges(),
		Progress:     toSeries(res.RateTrace, info.Metric),
		PowerW:       toSeries(res.PowerTrace, "W"),
		EnergyJ:      res.EnergyJ,
	}
	for _, d := range mgr.Decisions() {
		rep.Decisions = append(rep.Decisions, NRMDecision{
			AtSeconds: d.At.Seconds(),
			BudgetW:   d.BudgetW,
			Knob:      d.Knob.String(),
			Setting:   d.Setting,
		})
	}
	return rep, nil
}
