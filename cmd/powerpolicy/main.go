// Command powerpolicy is the paper's power-policy tool (§V-B): it runs an
// application on the simulated node while a background daemon applies a
// dynamic power-capping scheme to the package domain once per second,
// and streams per-second telemetry (cap, package power, frequency, and
// online performance).
//
// Usage:
//
//	powerpolicy -app LAMMPS -scheme step -high 0 -low 90 -period 10 -seconds 60
//	powerpolicy -app STREAM -scheme linear -start 170 -min 70 -rate 5
//	powerpolicy -app QMCPACK -scheme jagged -start 170 -min 80 -fall 8
//
// With -publish the progress stream is additionally served over TCP
// pub/sub for cmd/progressmon to attach to, and -pace slows the
// simulation to roughly real time so the stream is watchable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"progresscap/internal/apps"
	"progresscap/internal/engine"
	"progresscap/internal/msr"
	"progresscap/internal/policy"
	"progresscap/internal/powercap"
	"progresscap/internal/progress"
	"progresscap/internal/pubsub"
	"progresscap/internal/rapl"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("powerpolicy: ")

	app := flag.String("app", "LAMMPS", "application to run (see Applications in the registry)")
	schemeName := flag.String("scheme", "step", "capping scheme: none, constant, linear, step, jagged")
	seconds := flag.Float64("seconds", 60, "virtual seconds of workload")
	seed := flag.Uint64("seed", 1, "RNG seed")
	highW := flag.Float64("high", 0, "step: high cap in W (0 = uncapped)")
	lowW := flag.Float64("low", 90, "step/jagged/linear minimum cap in W; constant cap value")
	period := flag.Float64("period", 10, "step: seconds per level")
	startW := flag.Float64("start", 170, "linear/jagged: starting cap in W")
	rate := flag.Float64("rate", 5, "linear: cap decrease in W/s")
	fall := flag.Float64("fall", 8, "jagged: seconds per descent")
	delay := flag.Float64("delay", 4, "linear: uncapped delay in seconds")
	backend := flag.String("backend", "msr", "power-actuation backend: msr (register daemon) or sysfs (hardened actuator over the emulated powercap tree)")
	publish := flag.String("publish", "", "serve progress over TCP pub/sub on this address (e.g. 127.0.0.1:5556)")
	pace := flag.Bool("pace", false, "slow the simulation to ~real time")
	logPath := flag.String("log", "", "append per-window telemetry as JSON lines to this file")
	flag.Parse()

	info, err := apps.Lookup(*app)
	if err != nil {
		log.Fatal(err)
	}
	if !info.Runnable() {
		log.Fatalf("%s is a Category %s application: no reliable online metric to monitor", info.Name, info.Category)
	}

	var scheme policy.Scheme
	switch *schemeName {
	case "none":
		scheme = policy.NoCap{}
	case "constant":
		scheme = policy.Constant{Watts: *lowW}
	case "linear":
		scheme = policy.Linear{
			Delay:       time.Duration(*delay * float64(time.Second)),
			StartW:      *startW,
			MinW:        *lowW,
			RateWPerSec: *rate,
		}
	case "step":
		scheme = policy.Step{
			HighW:   *highW,
			LowW:    *lowW,
			HighFor: time.Duration(*period * float64(time.Second)),
			LowFor:  time.Duration(*period * float64(time.Second)),
		}
	case "jagged":
		scheme = policy.Jagged{
			StartW:      *startW,
			LowW:        *lowW,
			FallFor:     time.Duration(*fall * float64(time.Second)),
			UncappedFor: time.Duration(*delay * float64(time.Second)),
		}
	default:
		log.Fatalf("unknown scheme %q", *schemeName)
	}

	w := info.Build(*seconds)
	cfg := engine.DefaultConfig()
	cfg.Seed = *seed
	e, err := engine.New(cfg, w)
	if err != nil {
		log.Fatal(err)
	}
	// The sysfs backend routes every cap write through the hardened
	// actuator (retry/backoff, failover to the register path, safe-cap
	// park); msr keeps the legacy register daemon, byte-identical to
	// runs before backends existed.
	var act *rapl.Actuator
	switch *backend {
	case "", "msr":
		if err := e.SetScheme(scheme); err != nil {
			log.Fatal(err)
		}
	case "sysfs":
		zone := powercap.NewZone(e.Device(), msr.DefaultUnits())
		act = rapl.NewActuator(rapl.ActuatorConfig{
			Backends: []rapl.Backend{
				powercap.NewBackend(zone),
				rapl.NewMSRBackend(e.Device(), 10*time.Millisecond),
			},
			Seed: *seed,
		})
		if err := e.SetSchemeVia(scheme, rapl.DaemonWriter{A: act}); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown backend %q (want msr or sysfs)", *backend)
	}

	// Optional TCP bridge: forward the engine's in-process progress
	// stream to external subscribers. printPubStats reports transport
	// health (per-subscriber queue depth, sheds, reconnects) on every
	// exit path so silently-lossy monitors are visible post-mortem.
	printPubStats := func() {}
	if *publish != "" {
		pub, err := pubsub.NewPublisher(*publish)
		if err != nil {
			log.Fatal(err)
		}
		defer pub.Close()
		printPubStats = func() {
			st := pub.Stats()
			log.Printf("transport: %d conns accepted (%d reconnects, %d lost), %d live, %d messages shed",
				st.Accepted, st.Reconnects, st.ConnsLost, st.Live, st.Dropped)
			for _, s := range st.Subscribers {
				log.Printf("transport:   %s prefixes=%v queued=%d shed=%d",
					s.Remote, s.Prefixes, s.QueueDepth, s.Dropped)
			}
		}
		log.Printf("publishing progress on %s (topic %q)", pub.Addr(), progress.Topic(w.Name))
		sub := e.Bus().Subscribe(progress.Topic(w.Name), 4096)
		go func() {
			for m := range sub.C() {
				pub.Publish(m)
			}
		}()
		defer sub.Close()
	}

	var logFile *os.File
	var logEnc *json.Encoder
	if *logPath != "" {
		var err error
		logFile, err = os.OpenFile(*logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		logEnc = json.NewEncoder(logFile)
	}
	// closeTelemetry fsyncs and closes the JSON-lines log exactly once;
	// every exit path (clean, incomplete, interrupted) runs through it so
	// a tail of buffered telemetry is never lost. Deliberately not a
	// defer: the incomplete-workload path exits with os.Exit, which would
	// skip it.
	closeTelemetry := func() {
		if logFile == nil {
			return
		}
		if err := logFile.Sync(); err != nil {
			log.Printf("telemetry log sync: %v", err)
		}
		if err := logFile.Close(); err != nil {
			log.Printf("telemetry log close: %v", err)
		}
		logFile = nil
	}

	fmt.Printf("# app=%s metric=%q scheme=%s\n", info.Name, w.Metric, scheme.Name())
	fmt.Printf("%8s  %8s  %8s  %8s  %12s\n", "t(s)", "cap(W)", "pkg(W)", "f(MHz)", "progress/s")
	e.SetWindowHook(func(ws engine.WindowStats) {
		capStr := "none"
		if ws.CapW > 0 {
			capStr = fmt.Sprintf("%.0f", ws.CapW)
		}
		fmt.Printf("%8.1f  %8s  %8.1f  %8.0f  %12.2f\n",
			ws.At.Seconds(), capStr, ws.PkgW, ws.FreqMHz, ws.Sample.Rate)
		if logEnc != nil {
			rec := map[string]interface{}{
				"t_s":      ws.At.Seconds(),
				"app":      w.Name,
				"scheme":   scheme.Name(),
				"cap_w":    ws.CapW,
				"pkg_w":    ws.PkgW,
				"freq_mhz": ws.FreqMHz,
				"duty":     ws.Duty,
				"bw_scale": ws.BWScale,
				"rate":     ws.Sample.Rate,
				"reports":  ws.Sample.Reports,
				"phase":    ws.Sample.Phase,
			}
			if err := logEnc.Encode(rec); err != nil {
				log.Printf("telemetry log: %v", err)
			}
		}
		if *pace {
			time.Sleep(time.Second)
		}
	})

	// Advance window-by-window so SIGINT/SIGTERM can interrupt between
	// aggregation windows: the final partial window is still flushed (by
	// Finish), the telemetry log is fsynced, and the summary line prints
	// — a Ctrl-C mid-experiment leaves a complete, parseable record.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	maxDur := time.Duration(*seconds*6) * time.Second
	interrupted := false
loop:
	for e.Clock().Now() < maxDur {
		select {
		case s := <-sigCh:
			log.Printf("received %v: flushing final window", s)
			interrupted = true
			break loop
		default:
		}
		done, err := e.Advance(time.Second)
		if err != nil {
			closeTelemetry()
			log.Fatal(err)
		}
		if done {
			break
		}
	}
	res, err := e.Finish()
	if err != nil {
		closeTelemetry()
		log.Fatal(err)
	}
	fmt.Printf("# completed=%v elapsed=%.1fs energy=%.0fJ mean=%.2f %s, %d reports (%d dropped)\n",
		res.Completed, res.Elapsed.Seconds(), res.EnergyJ, res.MeanRate(), w.Metric,
		len(res.Samples), res.Dropped)
	if act != nil {
		c := act.Counters()
		fmt.Printf("# actuation: backend=sysfs attempts=%d retries=%d failovers=%d parks=%d transient=%d permanent=%d\n",
			c.Attempts, c.Retries, c.Failovers, c.Parks, c.TransientErrs, c.PermanentErrs)
	}
	printPubStats()
	closeTelemetry()
	if interrupted {
		fmt.Println("# interrupted: partial run, telemetry flushed")
		return
	}
	if !res.Completed {
		os.Exit(1)
	}
}
