// Command characterize runs the paper's §IV-A characterization for an
// application on the simulated node — β from execution times at 3300 vs
// 1600 MHz, MPO from the counters, and the uncapped baseline — and
// prints it, optionally as a JSON model file other tools can reuse.
//
// Usage:
//
//	characterize -app STREAM
//	characterize -app QMCPACK -seconds 20 -json qmcpack.json
//	characterize -app LAMMPS -predict 160,120,80
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"progresscap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("characterize: ")

	app := flag.String("app", "", "application to characterize (required)")
	seconds := flag.Float64("seconds", 15, "virtual seconds per measurement run")
	seed := flag.Uint64("seed", 1, "RNG seed")
	parallel := flag.Int("parallel", 2, "overlap the 3300/1600 MHz measurement runs when >1; results are identical at any setting")
	jsonPath := flag.String("json", "", "write the characterization to this JSON file")
	predict := flag.String("predict", "", "comma-separated package caps (W) to predict progress for")
	flag.Parse()

	if *app == "" {
		log.Fatal("-app is required; runnable applications: LAMMPS, AMG, QMCPACK, OpenMC, STREAM, CANDLE")
	}

	c, err := progresscap.CharacterizeParallel(*app, *seconds, *seed, *parallel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application:    %s\n", c.App)
	fmt.Printf("beta:           %.3f\n", c.Beta)
	fmt.Printf("MPO:            %.4g (%.2f ×10⁻³)\n", c.MPO, c.MPO*1e3)
	fmt.Printf("baseline rate:  %.3f units/s\n", c.BaselineRate)
	fmt.Printf("baseline power: %.1f W package\n", c.BaselinePkgW)

	if *jsonPath != "" {
		data, err := c.JSON()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}

	if *predict != "" {
		m, err := progresscap.FitModel(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nmodel predictions (α=%.1f, P_corecap=β·P_cap):\n", m.Alpha())
		fmt.Printf("%10s  %14s  %10s\n", "P_cap (W)", "progress/s", "Δ vs base")
		for _, tok := range strings.Split(*predict, ",") {
			capW, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				log.Fatalf("bad cap %q: %v", tok, err)
			}
			p := m.PredictProgress(capW)
			fmt.Printf("%10.0f  %14.3f  %9.1f%%\n", capW, p, 100*(p-c.BaselineRate)/c.BaselineRate)
		}
	}
}
