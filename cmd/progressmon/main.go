// Command progressmon is the monitoring half of the paper's progress
// framework: it subscribes to an application's progress stream over TCP
// pub/sub, aggregates raw reports once per second, and prints the online
// performance — run it against `powerpolicy -publish`.
//
// Usage:
//
//	progressmon -connect 127.0.0.1:5556 [-topic progress.] [-window 1s]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"progresscap/internal/progress"
	"progresscap/internal/pubsub"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("progressmon: ")

	addr := flag.String("connect", "127.0.0.1:5556", "powerpolicy -publish address")
	topic := flag.String("topic", "progress.", "topic prefix to subscribe to")
	window := flag.Duration("window", time.Second, "aggregation window (wall time)")
	flag.Parse()

	sub, err := pubsub.Dial(*addr, *topic)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()
	log.Printf("subscribed to %q at %s", *topic, *addr)

	mon := progress.NewMonitor(*window)
	detector, err := progress.NewPhaseDetector(0.2, 3)
	if err != nil {
		log.Fatal(err)
	}
	ticker := time.NewTicker(*window)
	defer ticker.Stop()
	start := time.Now()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	// Subscriber-side transport accounting, printed on exit so a lossy or
	// malformed stream is distinguishable from a quiet application.
	var received, malformed uint64

	finish := func() {
		b := progress.Classify(mon.Rates())
		log.Printf("stream ended: %d reports, behavior %s, %d phase changes",
			mon.Reports(), b, len(detector.Changes()))
		log.Printf("transport: %d messages received, %d malformed", received, malformed)
	}
	for {
		select {
		case s := <-sigCh:
			// Graceful stop: flush the final (partial) aggregation window
			// so its reports show in the summary, then summarize.
			last := mon.Flush(time.Since(start))
			if last.Reports > 0 {
				fmt.Printf("%8.1fs  rate=%12.2f/s  reports=%d  phase=%s   <- final partial window\n",
					last.At.Seconds(), last.Rate, last.Reports, last.Phase)
			}
			log.Printf("received %v", s)
			finish()
			return
		case m, ok := <-sub.C():
			if !ok {
				finish()
				return
			}
			received++
			rep, err := progress.UnmarshalReport(m.Payload)
			if err != nil {
				malformed++
				log.Printf("bad report: %v", err)
				continue
			}
			mon.Offer(rep)
		case <-ticker.C:
			s := mon.Flush(time.Since(start))
			if mon.EmptyWindows() >= 3 {
				// The stream has gone silent: say so explicitly instead
				// of printing a misleading rate=0 line. The application
				// may have hung, crashed, or lost its transport.
				fmt.Printf("%8.1fs  STALE: no reports for %d consecutive windows\n",
					s.At.Seconds(), mon.EmptyWindows())
				continue
			}
			note := ""
			if detector.Offer(s.Rate) {
				ch := detector.Changes()
				last := ch[len(ch)-1]
				note = fmt.Sprintf("   <- phase change (%.4g -> %.4g)", last.OldLevel, last.NewLevel)
			}
			fmt.Printf("%8.1fs  rate=%12.2f/s  reports=%d  phase=%s%s\n",
				s.At.Seconds(), s.Rate, s.Reports, s.Phase, note)
		}
	}
}
