// Command benchreport converts `go test -bench` output into the
// repository's tracked benchmark baseline format (BENCH_<date>.json).
//
// Usage:
//
//	go test -bench=. -benchmem . | benchreport -o BENCH_$(date +%F).json
//	benchreport -echo -before BENCH_old.json -o BENCH_new.json bench.out
//
// It parses standard testing.B result lines — including custom metrics
// such as the engine's virtual-s/s — plus the trailing `ok <pkg> <secs>`
// line, which it records as the suite wall time. Repeated lines for one
// benchmark (`go test -count=N`) collapse to the fastest sample, and
// Serial/Parallel benchmark pairs gain a derived parallel_speedup
// metric. With -before, a prior
// report is embedded under "before" so a single file carries the
// before/after pair for a PR. With -echo, input lines are copied to
// stdout so the tool can sit at the end of a pipe without hiding the
// benchmark output.
//
// Diff mode compares two baselines per benchmark and per metric:
//
//	benchreport -diff old.json new.json
//	benchreport -diff new.json          # old = new's embedded "before"
//
// It exits non-zero when any benchmark's ns/op regressed by more than
// -regress percent (default 10), making it a CI gate for the tracked
// perf trajectory.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"
)

// Benchmark is one parsed testing.B result line.
type Benchmark struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps a unit (ns/op, B/op, allocs/op, virtual-s/s, ...) to
	// its measured value.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the persisted baseline.
type Report struct {
	Schema     string `json:"schema"`
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// NumCPU is the machine's physical parallelism budget, distinct from
	// GOMAXPROCS (which a runner may pin): a parallel_speedup of ~1.0 on
	// a 1-CPU host is expected, not a regression.
	NumCPU       int         `json:"num_cpu,omitempty"`
	SuiteSeconds float64     `json:"suite_seconds,omitempty"`
	Benchmarks   []Benchmark `json:"benchmarks"`
	// Notes carries free-form context (host caveats, what changed).
	Notes []string `json:"notes,omitempty"`
	// Before optionally embeds the previous baseline for PR-over-PR
	// comparison.
	Before *Report `json:"before,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchreport: ")

	out := flag.String("o", "", "write the JSON report here (default stdout)")
	before := flag.String("before", "", "embed this prior report under \"before\"")
	echo := flag.Bool("echo", false, "copy input lines to stdout while parsing")
	note := flag.String("note", "", "free-form note recorded in the report")
	diff := flag.Bool("diff", false, "compare two baselines (or one against its embedded \"before\") instead of parsing bench output")
	regress := flag.Float64("regress", 10, "with -diff, fail when any ns/op regresses by more than this percent")
	preferEmbedded := flag.Bool("prefer-embedded", false, "with -diff and two files, diff the newer file against its own embedded \"before\" when it has one (a same-host pair) instead of the older file")
	flag.Parse()

	if *diff {
		if err := runDiff(flag.Args(), *regress, *preferEmbedded, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		log.Fatal("at most one input file")
	}

	rep := &Report{
		Schema:     "progresscap-bench/v1",
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if *note != "" {
		rep.Notes = append(rep.Notes, *note)
	}
	if *before != "" {
		data, err := os.ReadFile(*before)
		if err != nil {
			log.Fatal(err)
		}
		var prev Report
		if err := json.Unmarshal(data, &prev); err != nil {
			log.Fatalf("parsing %s: %v", *before, err)
		}
		prev.Before = nil // keep the chain one level deep
		rep.Before = &prev
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if *echo {
			fmt.Println(line)
		}
		if b, ok := parseBenchLine(line); ok {
			rep.addBenchmark(b)
			continue
		}
		if secs, ok := parseOKLine(line); ok {
			rep.SuiteSeconds = secs
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark result lines found in input")
	}
	addDerivedMetrics(rep)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	if *echo {
		fmt.Fprintf(os.Stderr, "benchreport: wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
	}
}

// parseBenchLine parses one testing.B result line:
//
//	BenchmarkEngineTicks-8   20   56663043 ns/op   75338 B/op   292 allocs/op   88.34 virtual-s/s
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseBenchLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	// Name, iterations, and at least one value+unit pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix the harness appends.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = val
	}
	return b, true
}

// addBenchmark records one parsed result line. Repeated lines for the
// same benchmark (a `go test -count=N` run) collapse to the fastest
// sample by ns/op — on shared-CPU hosts a single capture carries
// ±10% scheduling noise, and the minimum is the standard noise-robust
// estimate of a benchmark's true cost.
func (rep *Report) addBenchmark(b Benchmark) {
	for i, prev := range rep.Benchmarks {
		if prev.Name != b.Name {
			continue
		}
		if pn, ok := prev.Metrics["ns/op"]; ok {
			if bn, ok2 := b.Metrics["ns/op"]; ok2 && bn < pn {
				rep.Benchmarks[i] = b
			}
		}
		return
	}
	rep.Benchmarks = append(rep.Benchmarks, b)
}

// addDerivedMetrics computes cross-benchmark metrics the raw testing.B
// lines cannot express. For every Serial/Parallel benchmark pair
// (BenchmarkXSerial / BenchmarkXParallel), the Parallel entry gains a
// parallel_speedup metric — serial ns/op over parallel ns/op — so the
// sharding win is tracked as a first-class number in the baseline. A
// Scratch/Forked pair gains fork_speedup on the Forked entry the same
// way, and any benchmark reporting fork_hits/fork_runs custom metrics
// gains fork_hit_rate, tracking checkpoint-pool effectiveness.
func addDerivedMetrics(rep *Report) {
	serial := map[string]float64{}
	scratch := map[string]float64{}
	for _, b := range rep.Benchmarks {
		if base, ok := strings.CutSuffix(b.Name, "Serial"); ok {
			if ns := b.Metrics["ns/op"]; ns > 0 {
				serial[base] = ns
			}
		}
		if base, ok := strings.CutSuffix(b.Name, "Scratch"); ok {
			if ns := b.Metrics["ns/op"]; ns > 0 {
				scratch[base] = ns
			}
		}
	}
	for _, b := range rep.Benchmarks {
		if base, ok := strings.CutSuffix(b.Name, "Parallel"); ok {
			if sns, ok := serial[base]; ok {
				if pns := b.Metrics["ns/op"]; pns > 0 {
					b.Metrics["parallel_speedup"] = sns / pns
				}
			}
		}
		if base, ok := strings.CutSuffix(b.Name, "Forked"); ok {
			if sns, ok := scratch[base]; ok {
				if fns := b.Metrics["ns/op"]; fns > 0 {
					b.Metrics["fork_speedup"] = sns / fns
				}
			}
		}
		if runs := b.Metrics["fork_runs"]; runs > 0 {
			b.Metrics["fork_hit_rate"] = b.Metrics["fork_hits"] / runs
		}
	}
}

// parseOKLine extracts the elapsed seconds from a `ok <pkg> <secs>s`
// test-harness summary line.
func parseOKLine(line string) (float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[0] != "ok" || !strings.HasSuffix(fields[2], "s") {
		return 0, false
	}
	secs, err := strconv.ParseFloat(strings.TrimSuffix(fields[2], "s"), 64)
	if err != nil {
		return 0, false
	}
	return secs, true
}

// loadReport reads and validates one baseline file.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks recorded", path)
	}
	return &rep, nil
}

// lowerIsBetter reports whether a metric improves by shrinking. Rates
// (anything per second, like the engine's virtual-s/s) grow when things
// get faster, as do derived ratios like parallel_speedup, fork_speedup,
// and fork_hit_rate; costs (ns/op, B/op, allocs/op) shrink.
func lowerIsBetter(unit string) bool {
	switch unit {
	case "parallel_speedup", "fork_speedup", "fork_hit_rate", "fork_hits", "fork_runs":
		return false
	}
	return !strings.HasSuffix(unit, "/s")
}

// runDiff compares old vs new per benchmark and per metric, prints the
// delta table to w, and returns an error when any ns/op regression
// exceeds regressPct. With preferEmbedded, a new file carrying an
// embedded "before" is diffed against that instead of the older file:
// the embedded pair was measured on one host in one sitting, so it
// isolates the code change from day-to-day host-speed drift that a
// cross-date file pair would misreport as a regression.
func runDiff(args []string, regressPct float64, preferEmbedded bool, w io.Writer) error {
	var oldRep, newRep *Report
	var oldName, newName string
	switch len(args) {
	case 1:
		rep, err := loadReport(args[0])
		if err != nil {
			return err
		}
		if rep.Before == nil {
			return fmt.Errorf("%s has no embedded \"before\" to diff against", args[0])
		}
		oldRep, newRep = rep.Before, rep
		oldName, newName = args[0]+"#before", args[0]
	case 2:
		var err error
		if oldRep, err = loadReport(args[0]); err != nil {
			return err
		}
		if newRep, err = loadReport(args[1]); err != nil {
			return err
		}
		oldName, newName = args[0], args[1]
		if preferEmbedded && newRep.Before != nil {
			oldRep, oldName = newRep.Before, args[1]+"#before"
		}
	default:
		return fmt.Errorf("-diff needs one or two baseline files, got %d", len(args))
	}

	fmt.Fprintf(w, "benchmark diff: %s (%s) -> %s (%s)\n", oldName, oldRep.Date, newName, newRep.Date)
	oldBy := map[string]Benchmark{}
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}

	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tmetric\told\tnew\tdelta")
	var regressions []string
	matched := 0
	newBy := map[string]bool{}
	for _, nb := range newRep.Benchmarks {
		newBy[nb.Name] = true
	}
	for _, nb := range newRep.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(tw, "%s\t(new)\t-\t-\t-\n", nb.Name)
			continue
		}
		matched++
		units := make([]string, 0, len(nb.Metrics))
		for u := range nb.Metrics {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			nv := nb.Metrics[u]
			ov, ok := ob.Metrics[u]
			if !ok {
				continue
			}
			var pct float64
			if ov != 0 {
				pct = (nv - ov) / ov * 100
			}
			marker := ""
			if u == "ns/op" && ov > 0 && pct > regressPct {
				marker = "  << REGRESSION"
				regressions = append(regressions,
					fmt.Sprintf("%s ns/op %+.1f%% (%.0f -> %.0f, limit +%.0f%%)", nb.Name, pct, ov, nv, regressPct))
			} else if marker == "" {
				improved := pct < 0
				if !lowerIsBetter(u) {
					improved = pct > 0
				}
				if improved && (pct > 5 || pct < -5) {
					marker = "  (improved)"
				}
			}
			fmt.Fprintf(tw, "%s\t%s\t%g\t%g\t%+.1f%%%s\n", nb.Name, u, ov, nv, pct, marker)
		}
	}
	// One-sided benchmarks are informational, never failures: a renamed
	// or retired benchmark should read as "gone" in the table, not
	// silently vanish from the comparison.
	for _, ob := range oldRep.Benchmarks {
		if !newBy[ob.Name] {
			fmt.Fprintf(tw, "%s\t(gone)\t-\t-\t-\n", ob.Name)
		}
	}
	tw.Flush()
	if matched == 0 {
		return fmt.Errorf("no benchmark names in common between %s and %s", oldName, newName)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d ns/op regression(s) beyond %.0f%%:\n  %s",
			len(regressions), regressPct, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(w, "%d benchmarks compared, no ns/op regression beyond %.0f%%\n", matched, regressPct)
	return nil
}
