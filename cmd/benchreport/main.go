// Command benchreport converts `go test -bench` output into the
// repository's tracked benchmark baseline format (BENCH_<date>.json).
//
// Usage:
//
//	go test -bench=. -benchmem . | benchreport -o BENCH_$(date +%F).json
//	benchreport -echo -before BENCH_old.json -o BENCH_new.json bench.out
//
// It parses standard testing.B result lines — including custom metrics
// such as the engine's virtual-s/s — plus the trailing `ok <pkg> <secs>`
// line, which it records as the suite wall time. With -before, a prior
// report is embedded under "before" so a single file carries the
// before/after pair for a PR. With -echo, input lines are copied to
// stdout so the tool can sit at the end of a pipe without hiding the
// benchmark output.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed testing.B result line.
type Benchmark struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps a unit (ns/op, B/op, allocs/op, virtual-s/s, ...) to
	// its measured value.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the persisted baseline.
type Report struct {
	Schema       string      `json:"schema"`
	Date         string      `json:"date"`
	GoVersion    string      `json:"go_version"`
	GOMAXPROCS   int         `json:"gomaxprocs"`
	SuiteSeconds float64     `json:"suite_seconds,omitempty"`
	Benchmarks   []Benchmark `json:"benchmarks"`
	// Notes carries free-form context (host caveats, what changed).
	Notes []string `json:"notes,omitempty"`
	// Before optionally embeds the previous baseline for PR-over-PR
	// comparison.
	Before *Report `json:"before,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchreport: ")

	out := flag.String("o", "", "write the JSON report here (default stdout)")
	before := flag.String("before", "", "embed this prior report under \"before\"")
	echo := flag.Bool("echo", false, "copy input lines to stdout while parsing")
	note := flag.String("note", "", "free-form note recorded in the report")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		log.Fatal("at most one input file")
	}

	rep := &Report{
		Schema:     "progresscap-bench/v1",
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if *note != "" {
		rep.Notes = append(rep.Notes, *note)
	}
	if *before != "" {
		data, err := os.ReadFile(*before)
		if err != nil {
			log.Fatal(err)
		}
		var prev Report
		if err := json.Unmarshal(data, &prev); err != nil {
			log.Fatalf("parsing %s: %v", *before, err)
		}
		prev.Before = nil // keep the chain one level deep
		rep.Before = &prev
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if *echo {
			fmt.Println(line)
		}
		if b, ok := parseBenchLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
			continue
		}
		if secs, ok := parseOKLine(line); ok {
			rep.SuiteSeconds = secs
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark result lines found in input")
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	if *echo {
		fmt.Fprintf(os.Stderr, "benchreport: wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
	}
}

// parseBenchLine parses one testing.B result line:
//
//	BenchmarkEngineTicks-8   20   56663043 ns/op   75338 B/op   292 allocs/op   88.34 virtual-s/s
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseBenchLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	// Name, iterations, and at least one value+unit pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix the harness appends.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = val
	}
	return b, true
}

// parseOKLine extracts the elapsed seconds from a `ok <pkg> <secs>s`
// test-harness summary line.
func parseOKLine(line string) (float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[0] != "ok" || !strings.HasSuffix(fields[2], "s") {
		return 0, false
	}
	secs, err := strconv.ParseFloat(strings.TrimSuffix(fields[2], "s"), 64)
	if err != nil {
		return 0, false
	}
	return secs, true
}
