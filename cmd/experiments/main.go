// Command experiments regenerates the paper's tables and figures on the
// simulated node and prints them as text.
//
// Usage:
//
//	experiments [-run table1,table6,fig4] [-seconds 12] [-reps 3] [-seed 1] [-parallel N]
//
// With no -run flag every artifact is produced in paper order. All
// artifacts share one memoizing scheduler, so baselines reused across
// tables and figures simulate once; -parallel bounds how many
// simulations run concurrently (default GOMAXPROCS). Output is
// byte-identical at any -parallel setting. A scheduler summary line
// (runs executed, cache hits, peak workers, wall time) goes to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"progresscap/internal/experiments"
	"progresscap/internal/soak"
	"progresscap/internal/spec"
)

// replaySpec runs one scenario spec file — typically a minimal repro
// emitted by cmd/soak — under the same oracle battery the soak uses,
// so a shrunk failure re-fails here deterministically. The deliberate
// bug is re-armed from the environment (see soak.BugEnv) when the repro
// was produced under it.
func replaySpec(runner *experiments.Runner, path string) int {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 2
	}
	sc, err := spec.Decode(b)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", path, err)
		return 2
	}
	rep, err := soak.New(runner).RunScenario(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", path, err)
		return 2
	}
	if rep.Failed() {
		fmt.Printf("spec %s (%s): FAIL\n", sc.Name, rep.Hash)
		for _, v := range rep.Violations {
			fmt.Printf("  %s\n", v)
		}
		return 1
	}
	fmt.Printf("spec %s (%s): ok\n", sc.Name, rep.Hash)
	return 0
}

func main() {
	runList := flag.String("run", "", "comma-separated artifact ids (table1,tables2to4,table5,table6,fig1..fig5,ext-alpha,ext-techniques,ext-composite,ext-cluster,ext-faults,ext-crashes,ext-partitions,ext-fleet,ext-backends); empty = all")
	seconds := flag.Float64("seconds", 12, "virtual seconds per measurement run")
	reps := flag.Int("reps", 3, "repetitions per power cap (Figure 4)")
	seed := flag.Uint64("seed", 1, "base RNG seed")
	parallel := flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS); results are identical at any setting")
	nodeWorkers := flag.Int("nodeworkers", 0, "max concurrent node shards per cluster epoch (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
	invariants := flag.Bool("invariants", false, "arm the engine-level safety invariant checker on every run; violations fail the artifact")
	csvDir := flag.String("csv", "", "also write each artifact's tables as CSV files into this directory")
	svgDir := flag.String("svg", "", "also write each artifact's figures as SVG files into this directory")
	fixedTick := flag.Bool("fixedtick", false, "run every engine in fixed-tick oracle mode instead of event-driven macro-stepping (validation; output is identical)")
	backend := flag.String("backend", "msr", "power-actuation backend for capped runs: msr (register daemon) or sysfs (hardened actuator over the emulated powercap tree)")
	forking := flag.Bool("forking", false, "fork sweep cells from pooled engine checkpoints where they share a simulation prefix; results are identical at any setting")
	specFile := flag.String("spec", "", "replay one scenario spec JSON (e.g. a soak repro) under the full oracle battery instead of generating artifacts; exits 1 on violation")
	cacheDir := flag.String("cachedir", "", "back the run memo table with a disk cache in this directory, shared across invocations")
	cachePrune := flag.Duration("cacheprune", 0, "before running, evict -cachedir entries older than this age (e.g. 168h); 0 = never")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the suite here")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (taken after the suite) here")
	flag.Parse()

	var cpuProfileFile *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: creating %s: %v\n", *cpuProfile, err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: starting CPU profile: %v\n", err)
			os.Exit(2)
		}
		cpuProfileFile = f
	}

	for _, dir := range []string{*csvDir, *svgDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: creating %s: %v\n", dir, err)
				os.Exit(2)
			}
		}
	}

	// One runner for the whole invocation: runs shared across artifacts
	// (e.g. the Table 6 / Figure 4 characterizations) simulate once.
	runner := experiments.NewRunner(*parallel)
	if *cacheDir != "" {
		if *cachePrune > 0 {
			removed, freed, err := experiments.PruneDiskCache(*cacheDir, *cachePrune, time.Now())
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(2)
			}
			if removed > 0 {
				fmt.Fprintf(os.Stderr, "experiments: cache prune: %d entries older than %s removed, %d bytes freed\n", removed, *cachePrune, freed)
			}
		}
		if err := runner.EnableDiskCache(*cacheDir); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
	}
	if *specFile != "" {
		os.Exit(replaySpec(runner, *specFile))
	}
	opts := experiments.Options{
		RunSeconds:      *seconds,
		Reps:            *reps,
		Seed:            *seed,
		CheckInvariants: *invariants,
		Parallel:        *parallel,
		FixedTick:       *fixedTick,
		NodeWorkers:     *nodeWorkers,
		Backend:         *backend,
		Forking:         *forking,
	}.WithRunner(runner)
	start := time.Now()

	type gen struct {
		id string
		fn func(experiments.Options) (*experiments.Artifact, error)
	}
	gens := []gen{
		{"table1", experiments.Table1},
		{"tables2to4", func(experiments.Options) (*experiments.Artifact, error) { return experiments.Tables2to4(), nil }},
		{"table5", func(experiments.Options) (*experiments.Artifact, error) { return experiments.Table5(), nil }},
		{"table6", experiments.Table6},
		{"fig1", experiments.Figure1},
		{"fig2", experiments.Figure2},
		{"fig3", experiments.Figure3},
		{"fig4", experiments.Figure4},
		{"fig5", experiments.Figure5},
		{"ext-alpha", experiments.ExtAlphaFit},
		{"ext-techniques", experiments.ExtTechniques},
		{"ext-composite", experiments.ExtComposite},
		{"ext-cluster", experiments.ExtCluster},
		{"ext-energy", experiments.ExtEnergy},
		{"ext-method", experiments.ExtMethod},
		{"ext-faults", experiments.ExtFaults},
		{"ext-crashes", experiments.ExtCrashes},
		{"ext-partitions", experiments.ExtPartitions},
		{"ext-fleet", experiments.ExtFleet},
		{"ext-backends", experiments.ExtBackends},
	}

	want := map[string]bool{}
	if *runList != "" {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(id)] = true
		}
		for id := range want {
			found := false
			for _, g := range gens {
				if g.id == id {
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "experiments: unknown artifact %q\n", id)
				os.Exit(2)
			}
		}
	}

	exit := 0
	for _, g := range gens {
		if len(want) > 0 && !want[g.id] {
			continue
		}
		art, err := g.fn(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", g.id, err)
			exit = 1
			continue
		}
		fmt.Println(art.Render())
		if *csvDir != "" {
			for i, tbl := range art.Tables {
				name := fmt.Sprintf("%s_%d.csv", art.ID, i)
				if err := os.WriteFile(filepath.Join(*csvDir, name), []byte(tbl.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", name, err)
					exit = 1
				}
			}
		}
		if *svgDir != "" {
			for _, fig := range art.Figures {
				name := fig.Name + ".svg"
				if err := os.WriteFile(filepath.Join(*svgDir, name), []byte(fig.Plot.SVG()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", name, err)
					exit = 1
				}
			}
		}
	}
	st := runner.Stats()
	shardLine := ""
	if st.Shards.Epochs > 0 {
		shardLine = fmt.Sprintf(", %d cluster epochs over %d shards (peak %d node workers, barrier wait %s)",
			st.Shards.Epochs, st.Shards.Shards, st.Shards.PeakWorkers, st.Shards.BarrierWait.Round(time.Microsecond))
	}
	actLine := ""
	if a := st.Actuation; a.Attempts > 0 {
		actLine = fmt.Sprintf(", actuation %d attempts (%d retries, %d failovers, %d parks)",
			a.Attempts, a.Retries, a.Failovers, a.Parks)
	}
	forkLine := ""
	if st.ForkRuns > 0 {
		forkLine = fmt.Sprintf(", %d/%d runs forked from shared prefixes (%d virtual s skipped)",
			st.ForkHits, st.ForkRuns, st.ForkSkippedSec)
	}
	fmt.Fprintf(os.Stderr, "experiments: %d runs executed, %d served from cache (%d memo, %d disk), peak %d/%d workers%s%s%s, wall %s\n",
		st.Executed, st.CacheHits+st.DiskHits, st.CacheHits, st.DiskHits, st.PeakWorkers, runner.Parallel(), shardLine, actLine, forkLine, time.Since(start).Round(time.Millisecond))
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: creating %s: %v\n", *memProfile, err)
			exit = 2
		} else {
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: writing heap profile: %v\n", err)
				exit = 2
			}
			f.Close()
		}
	}
	if cpuProfileFile != nil {
		// os.Exit below would skip deferred calls; flush explicitly.
		pprof.StopCPUProfile()
		cpuProfileFile.Close()
	}
	os.Exit(exit)
}
