// Command soak generates randomized scenario specs (internal/spec) and
// executes each under the full invariant-oracle battery (internal/soak).
// Any failing scenario is automatically shrunk to a locally minimal
// reproduction and written to the output directory; replay it with
//
//	go run ./cmd/experiments -spec out/soak/<name>.json
//
// Usage:
//
//	soak [-seeds 25] [-seed 0] [-parallel N] [-cachedir DIR] [-out out/soak]
//
// With -seed set, exactly that one seed runs; otherwise seeds 1..-seeds
// run, cluster scenarios and single-node scenarios mixed by the
// generator. Single-node scenarios share one memoizing runner (and, with
// -cachedir, a disk cache), so repeated invocations skip already-proven
// specs. Setting the SOAK_BUG environment variable to a wattage arms a
// deliberate budget-accounting bug — the self-test that proves the soak
// finds and shrinks real violations end to end.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"progresscap/internal/experiments"
	"progresscap/internal/soak"
	"progresscap/internal/spec"
)

// forceBackend overrides the actuation backend on single-node scenarios
// when the -backend flag is set. Forcing msr drops any powercap fault
// plan (those faults only exist on the sysfs path); forcing sysfs is
// skipped for pinned-DVFS scenarios, which carry no cap daemon. Cluster
// scenarios pass through untouched.
func forceBackend(sc spec.Scenario, backend string) spec.Scenario {
	if backend == "" || sc.Cluster() {
		return sc
	}
	switch backend {
	case "msr":
		sc.Operating.Backend = ""
		sc.Faults.Powercap = nil
	case "sysfs":
		if sc.Operating.DVFSMHz == 0 {
			sc.Operating.Backend = "sysfs"
		}
	}
	return sc
}

func main() {
	seeds := flag.Int("seeds", 25, "number of generated scenarios (seeds 1..N)")
	oneSeed := flag.Uint64("seed", 0, "run exactly this one generator seed (overrides -seeds)")
	parallel := flag.Int("parallel", 0, "max concurrent scenarios (0 = GOMAXPROCS)")
	nodeWorkers := flag.Int("nodeworkers", 0, "max concurrent node shards per cluster epoch (0 = GOMAXPROCS, 1 = serial); oracle outcomes are identical at any setting")
	cacheDir := flag.String("cachedir", "", "disk result cache directory shared with cmd/experiments")
	cachePrune := flag.Duration("cacheprune", 0, "before running, evict -cachedir entries older than this age (e.g. 168h); 0 = never")
	forking := flag.Bool("forking", false, "fork single-node scenarios from pooled engine checkpoints where they share a simulation prefix; oracle outcomes are identical at any setting")
	outDir := flag.String("out", filepath.Join("out", "soak"), "directory for shrunk minimal repros")
	shrinkBudget := flag.Int("shrinkbudget", soak.DefaultShrinkBudget, "max scenario executions per shrink")
	backend := flag.String("backend", "", "force the actuation backend on every generated single-node scenario: msr or sysfs (empty = generator's own mix)")
	flag.Parse()

	switch *backend {
	case "", "msr", "sysfs":
	default:
		fmt.Fprintf(os.Stderr, "soak: unknown backend %q (want msr or sysfs)\n", *backend)
		os.Exit(2)
	}

	runner := experiments.NewRunner(*parallel)
	if *cacheDir != "" {
		if *cachePrune > 0 {
			removed, freed, err := experiments.PruneDiskCache(*cacheDir, *cachePrune, time.Now())
			if err != nil {
				fmt.Fprintf(os.Stderr, "soak: %v\n", err)
				os.Exit(2)
			}
			if removed > 0 {
				fmt.Fprintf(os.Stderr, "soak: cache prune: %d entries older than %s removed, %d bytes freed\n", removed, *cachePrune, freed)
			}
		}
		if err := runner.EnableDiskCache(*cacheDir); err != nil {
			fmt.Fprintf(os.Stderr, "soak: %v\n", err)
			os.Exit(2)
		}
	}
	h := soak.New(runner)
	h.NodeWorkers = *nodeWorkers
	h.Forking = *forking
	if h.BugW != 0 {
		fmt.Fprintf(os.Stderr, "soak: deliberate budget bug armed (+%g W)\n", h.BugW)
	}

	var list []uint64
	if *oneSeed != 0 {
		list = []uint64{*oneSeed}
	} else {
		for s := uint64(1); s <= uint64(*seeds); s++ {
			list = append(list, s)
		}
	}

	workers := *parallel
	if workers <= 0 {
		workers = 4
	}
	type outcome struct {
		sc  spec.Scenario
		rep *soak.Report
		err error
	}
	results := make([]outcome, len(list))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for i, seed := range list {
		wg.Add(1)
		go func(i int, seed uint64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sc := spec.Generate(seed)
			sc = forceBackend(sc, *backend)
			rep, err := h.RunScenario(sc)
			results[i] = outcome{sc, rep, err}
		}(i, seed)
	}
	wg.Wait()

	exit := 0
	clusterN, singleN, failures := 0, 0, 0
	for i, seed := range list {
		o := results[i]
		if o.err != nil {
			fmt.Fprintf(os.Stderr, "soak: seed %d: %v\n", seed, o.err)
			exit = 2
			continue
		}
		if o.sc.Cluster() {
			clusterN++
		} else {
			singleN++
		}
		if !o.rep.Failed() {
			continue
		}
		failures++
		exit = 1
		fmt.Printf("seed %d (%s, %s): FAIL\n", seed, o.sc.Name, o.rep.Hash)
		for _, v := range o.rep.Violations {
			fmt.Printf("  %s\n", v)
		}
		// Shrink sequentially: repros should be minimal and deterministic,
		// and failures are the rare path.
		sr, err := h.Shrink(o.sc, o.rep, *shrinkBudget)
		if err != nil {
			fmt.Fprintf(os.Stderr, "soak: shrinking seed %d: %v\n", seed, err)
			exit = 2
			continue
		}
		min := sr.Scenario
		fmt.Printf("  shrunk in %d runs to %d faults, %g s horizon, %d nodes%s\n",
			sr.Runs, min.FaultCount(), min.HorizonSec, min.Fleet.Nodes,
			map[bool]string{true: " (budget exhausted, may not be minimal)"}[sr.Exhausted])
		for _, v := range sr.Report.Violations {
			fmt.Printf("    %s\n", v)
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "soak: %v\n", err)
			exit = 2
			continue
		}
		b, err := min.Encode()
		if err != nil {
			fmt.Fprintf(os.Stderr, "soak: encoding repro for seed %d: %v\n", seed, err)
			exit = 2
			continue
		}
		path := filepath.Join(*outDir, fmt.Sprintf("repro-seed%d.json", seed))
		if err := os.WriteFile(path, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "soak: %v\n", err)
			exit = 2
			continue
		}
		fmt.Printf("  minimal repro: %s (replay: go run ./cmd/experiments -spec %s)\n", path, path)
	}

	st := runner.Stats()
	shardLine := ""
	if st.Shards.Epochs > 0 {
		shardLine = fmt.Sprintf(", %d cluster epochs over %d shards (peak %d node workers, barrier wait %s)",
			st.Shards.Epochs, st.Shards.Shards, st.Shards.PeakWorkers, st.Shards.BarrierWait.Round(time.Microsecond))
	}
	actLine := ""
	if a := st.Actuation; a.Attempts > 0 {
		actLine = fmt.Sprintf(", actuation %d attempts (%d retries, %d failovers, %d parks)",
			a.Attempts, a.Retries, a.Failovers, a.Parks)
	}
	forkLine := ""
	if st.ForkRuns > 0 {
		forkLine = fmt.Sprintf(", %d/%d runs forked from shared prefixes (%d virtual s skipped)",
			st.ForkHits, st.ForkRuns, st.ForkSkippedSec)
	}
	fmt.Fprintf(os.Stderr, "soak: %d scenarios (%d cluster, %d single), %d failing, %d runs executed, %d served from cache (%d memo, %d disk)%s%s%s, wall %s\n",
		len(list), clusterN, singleN, failures, st.Executed, st.CacheHits+st.DiskHits, st.CacheHits, st.DiskHits, shardLine, actLine, forkLine, time.Since(start).Round(time.Millisecond))
	os.Exit(exit)
}
