package progresscap

import (
	"math"
	"testing"
	"time"
)

func TestRunURBANUncapped(t *testing.T) {
	rep, err := RunURBAN(16, Scheme{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("URBAN did not complete")
	}
	if len(rep.Components) != 2 {
		t.Fatalf("components = %d", len(rep.Components))
	}
	names := map[string]bool{}
	for _, c := range rep.Components {
		names[c.Name] = true
		if c.Baseline <= 0 {
			t.Fatalf("%s baseline = %v", c.Name, c.Baseline)
		}
		if len(c.Progress.Values) == 0 {
			t.Fatalf("%s has no progress series", c.Name)
		}
	}
	if !names["nek5000"] || !names["energyplus"] {
		t.Fatalf("component names = %v", names)
	}
	// Composite hovers near 1.0 uncapped (interior windows).
	vals := rep.Composite.Values
	if len(vals) < 6 {
		t.Fatalf("composite windows = %d", len(vals))
	}
	var sum float64
	for _, v := range vals[2 : len(vals)-2] {
		sum += v
	}
	mid := sum / float64(len(vals)-4)
	if math.Abs(mid-1) > 0.2 {
		t.Fatalf("uncapped composite = %v, want ~1", mid)
	}
}

func TestRunURBANCappedDegrades(t *testing.T) {
	capped, err := RunURBAN(14, ConstantCap(85), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.CapW.Values) == 0 {
		t.Fatal("capped run missing cap series")
	}
	vals := capped.Composite.Values
	var sum float64
	n := 0
	for _, v := range vals[2:] {
		sum += v
		n++
	}
	if n == 0 || sum/float64(n) > 0.9 {
		t.Fatalf("capped composite = %v, want well below 1", sum/float64(max(n, 1)))
	}
}

func TestRunURBANValidation(t *testing.T) {
	if _, err := RunURBAN(2, Scheme{}, 1); err == nil {
		t.Fatal("too-short URBAN accepted")
	}
}

func TestRunClusterEqualSplit(t *testing.T) {
	rep, err := RunCluster(ClusterConfig{
		Nodes: []NodeSpec{
			{Name: "a", App: "LAMMPS"},
			{Name: "b", App: "LAMMPS", PowerScale: 1.15},
		},
		BudgetW: 280,
		Seconds: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatal("cluster job incomplete")
	}
	if len(rep.NodeCaps) != 2 {
		t.Fatalf("node caps = %d", len(rep.NodeCaps))
	}
	if rep.MeanMinProgress <= 0 || rep.MeanMinProgress > 1.2 {
		t.Fatalf("MeanMinProgress = %v", rep.MeanMinProgress)
	}
	if rep.TotalEnergyJ <= 0 {
		t.Fatal("no energy accounted")
	}
	if len(rep.MinProgress.Values) == 0 || len(rep.BudgetW.Values) == 0 {
		t.Fatal("missing series")
	}
}

func TestRunClusterDecayingBudget(t *testing.T) {
	rep, err := RunCluster(ClusterConfig{
		Nodes:       []NodeSpec{{App: "LAMMPS"}},
		BudgetW:     200,
		BudgetEndW:  90,
		BudgetDecay: 10 * time.Second,
		Seconds:     15,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := rep.BudgetW.Values
	if b[0] != 200 || b[len(b)-1] != 90 {
		t.Fatalf("budget endpoints = %v, %v", b[0], b[len(b)-1])
	}
}

func TestRunClusterValidation(t *testing.T) {
	if _, err := RunCluster(ClusterConfig{BudgetW: 100}); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if _, err := RunCluster(ClusterConfig{Nodes: []NodeSpec{{App: "LAMMPS"}}}); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := RunCluster(ClusterConfig{Nodes: []NodeSpec{{App: "HACC"}}, BudgetW: 100}); err == nil {
		t.Fatal("Category 3 node accepted")
	}
	if _, err := RunCluster(ClusterConfig{
		Nodes: []NodeSpec{{App: "LAMMPS"}}, BudgetW: 100, Policy: "bogus",
	}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
